"""Tests for the telemetry exposition and HTTP service (repro.serve)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import CampaignEngine, EngineConfig, ResultStore, WorkUnit
from repro.observe.export import (
    dumps_json,
    metric_name,
    render_prometheus,
    validate_exposition,
)
from repro.observe.slo import SLOEngine, SLORule
from repro.observe.timeseries import TelemetrySample
from repro.serve import (
    CampaignTelemetry,
    TelemetryHub,
    TelemetryServer,
    serve_monitor,
)


def _get(url: str) -> tuple[int, str, str]:
    """``(status, body, content_type)`` — 4xx/5xx are answers here."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return (response.status, response.read().decode("utf-8"),
                    response.headers.get("Content-Type", ""))
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8"), \
            exc.headers.get("Content-Type", "")


def _sample(**gauges) -> TelemetrySample:
    return TelemetrySample(
        t=100.0, gauges=gauges or {"campaign.done": 3.0},
        counters={"engine.completed": 3.0},
        rates={"engine.completed": 0.5},
        histograms={"engine.experiment_seconds": {
            "count": 3, "sum": 0.6, "mean": 0.2, "max": 0.3,
            "p50": 0.2, "p99": 0.3}},
        outcomes={"ok": 2, "latent_inf_nan": 1})


# ----------------------------------------------------------------------
# Exposition rendering
# ----------------------------------------------------------------------
class TestExposition:
    def test_render_is_deterministic_and_parseable(self):
        sample = _sample()
        text = render_prometheus(sample)
        assert text == render_prometheus(sample)
        parsed = validate_exposition(text)
        by_name = {name: value for name, labels, value in parsed
                   if not labels}
        assert by_name["repro_up"] == 1.0
        assert by_name["repro_campaign_done"] == 3.0
        assert by_name["repro_engine_completed_total"] == 3.0
        assert by_name["repro_engine_completed_rate"] == 0.5
        assert by_name["repro_engine_experiment_seconds_count"] == 3.0

    def test_outcomes_and_quantiles_are_labelled(self):
        parsed = validate_exposition(render_prometheus(_sample()))
        labelled = {(name, tuple(sorted(labels.items()))): value
                    for name, labels, value in parsed if labels}
        assert labelled[("repro_campaign_outcome_total",
                         (("outcome", "latent_inf_nan"),))] == 1.0
        assert labelled[("repro_engine_experiment_seconds",
                         (("quantile", "0.99"),))] == 0.3

    def test_none_sample_still_exposes_up(self):
        text = render_prometheus(None)
        parsed = validate_exposition(text)
        assert [(n, v) for n, _, v in parsed] == [("repro_up", 1.0)]

    def test_metric_name_sanitization(self):
        assert metric_name("campaign.done") == "repro_campaign_done"
        assert metric_name("rate.engine-x y") == "repro_rate_engine_x_y"

    def test_validator_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            validate_exposition("repro_up 1\nbroken{ 2\n")
        with pytest.raises(ValueError):
            validate_exposition("# TYPE repro_up bogus\nrepro_up 1\n")
        with pytest.raises(ValueError):
            validate_exposition("# HELP only comments\n")

    def test_json_document_is_deterministic(self):
        sample = _sample()
        assert dumps_json(sample) == dumps_json(sample)
        doc = json.loads(dumps_json(sample, meta={"workload": "resnet"}))
        assert doc["schema"] == 1
        assert doc["meta"] == {"workload": "resnet"}
        assert doc["sample"]["outcomes"] == {"latent_inf_nan": 1, "ok": 2}


# ----------------------------------------------------------------------
# Hub + server endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_all_endpoints_respond(self):
        hub = TelemetryHub(meta={"workload": "resnet"})
        hub.publish(_sample())
        with TelemetryServer(hub, port=0) as server:
            status, body, ctype = _get(f"{server.url}/metrics")
            assert status == 200 and "version=0.0.4" in ctype
            validate_exposition(body)

            status, body, _ = _get(f"{server.url}/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            status, body, _ = _get(f"{server.url}/progress")
            assert json.loads(body)["schema"] == 1

            status, body, _ = _get(f"{server.url}/alerts")
            assert json.loads(body)["firing"] == []

            status, body, _ = _get(f"{server.url}/")
            assert "/metrics" in json.loads(body)["endpoints"]

            status, body, _ = _get(f"{server.url}/nope")
            assert status == 404
            assert "/healthz" in json.loads(body)["endpoints"]
        assert hub.scrapes == 6

    def test_healthz_degrades_on_firing_critical_slo(self):
        slo = SLOEngine([SLORule(name="qrate",
                                 metric="campaign.quarantine_rate",
                                 max=0.1)])
        hub = TelemetryHub(slo_engine=slo)
        sample = TelemetrySample(
            t=time.time(), gauges={"campaign.quarantine_rate": 0.5})
        slo.evaluate(sample.flat(), now=sample.t)
        hub.publish(sample)
        with TelemetryServer(hub, port=0) as server:
            status, body, _ = _get(f"{server.url}/healthz")
            assert status == 503
            payload = json.loads(body)
            assert payload["status"] == "degraded"
            assert "slo:qrate" in payload["reasons"]

            status, body, _ = _get(f"{server.url}/alerts")
            assert json.loads(body)["firing"] == ["qrate"]

    def test_healthz_degrades_on_stalled_workers_and_legacy_alerts(self):
        hub = TelemetryHub()
        hub.publish(TelemetrySample(t=time.time(),
                                    gauges={"workers.stalled": 2.0}),
                    alerts=["stalled workers: w0, w1"])
        healthy, payload = hub.health()
        assert not healthy
        assert "stalled_workers:2" in payload["reasons"]
        assert any(r.startswith("alert:") for r in payload["reasons"])


# ----------------------------------------------------------------------
# Concurrent scrape-while-writing (the ISSUE acceptance scenario):
# a live parallel engine runs while a scraper hammers /metrics — every
# single scrape must parse.
# ----------------------------------------------------------------------
def _sleepy_factory():
    def run(payload):
        time.sleep(payload.get("sleep", 0.0))
        return {"value": payload["x"], "outcome": "ok"}
    return run


class TestConcurrentScrape:
    def test_every_scrape_parses_during_live_parallel_run(self):
        units = [WorkUnit(key=f"key{i}",
                          payload={"key": f"key{i}", "x": i, "sleep": 0.03})
                 for i in range(12)]
        telemetry = CampaignTelemetry(port=0, interval=0.01)
        engine = CampaignEngine(_sleepy_factory, EngineConfig(parallel=2))
        telemetry.on_engine(engine)
        report_box = {}

        def run_engine():
            report_box["report"] = engine.run(units)

        runner = threading.Thread(target=run_engine)
        with telemetry:
            runner.start()
            scrapes = 0
            while runner.is_alive():
                _, body, _ = _get(f"{telemetry.url}/metrics")
                validate_exposition(body)  # raises on any malformed scrape
                status, health, _ = _get(f"{telemetry.url}/healthz")
                assert status in (200, 503)
                json.loads(health)
                scrapes += 1
            runner.join()
        assert scrapes >= 3, f"only {scrapes} scrapes landed mid-run"
        assert report_box["report"].executed == 12
        # The final (post-stop) sample reflects the finished campaign.
        final = telemetry.buffer.latest()
        assert final.gauges["campaign.done"] == 12.0

    def test_campaign_telemetry_persists_series_and_gates_on_slo(
            self, tmp_path):
        store_path = tmp_path / "camp.jsonl"
        rules = [SLORule(name="done-ceiling", metric="campaign.done",
                         max=0.5)]
        telemetry = CampaignTelemetry(store_path=store_path, port=0,
                                      interval=0.01, rules=rules)
        engine = CampaignEngine(_sleepy_factory, EngineConfig(parallel=1))
        telemetry.on_engine(engine)
        units = [WorkUnit(key=f"k{i}",
                          payload={"key": f"k{i}", "x": i, "sleep": 0.02})
                 for i in range(4)]
        with telemetry:
            engine.run(units)
            time.sleep(0.05)  # let the sampler observe the breach
        assert telemetry.breached() == ["done-ceiling"]
        assert telemetry.series_path.exists()
        from repro.observe.timeseries import read_series
        _, samples = read_series(telemetry.series_path)
        assert samples, "series file persisted no samples"


# ----------------------------------------------------------------------
# Post-hoc twin: repro monitor --serve over an on-disk store
# ----------------------------------------------------------------------
class TestServeMonitor:
    def _store(self, path, total=3):
        store = ResultStore(path, kind="campaign",
                            meta={"workload": "resnet",
                                  "num_experiments": total})
        for i in range(total):
            store.append(f"key{i}", {"outcome": "ok", "index": i})
        store.close()
        return path

    def test_serves_until_complete_and_reports(self, tmp_path):
        store_path = self._store(tmp_path / "r.jsonl")
        seen = {}

        def on_start(url):
            status, body, _ = _get(f"{url}/metrics")
            seen["metrics"] = (status, body)

        result = serve_monitor(store_path, port=0, interval=0.01,
                               max_polls=5, on_start=on_start)
        assert result["polls"] >= 1
        assert result["alerts"] == []
        assert result["slo_breached"] == []
        # The campaign in the store is complete, so it exits on its own.
        status, body = seen["metrics"]
        assert status == 200
        validate_exposition(body)

    def test_slo_rules_evaluate_against_polled_state(self, tmp_path):
        store_path = self._store(tmp_path / "r.jsonl")
        rules = [SLORule(name="done-floor", metric="campaign.done",
                         min=100.0)]
        result = serve_monitor(store_path, port=0, interval=0.01,
                               max_polls=2, rules=rules)
        assert result["slo_breached"] == ["done-floor"]
        assert any(s["rule"] == "done-floor" and s["state"] == "firing"
                   for s in result["statuses"])

    def test_unreadable_store_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="monitor polling failed"):
            serve_monitor(tmp_path / "missing.jsonl", port=0,
                          interval=0.01, max_polls=1)
