"""Tests for the declarative SLO rule engine (repro.observe.slo)."""

import json

import pytest

from repro.observe.slo import (
    FIRING,
    NO_DATA,
    OK,
    PENDING,
    SLOConfigError,
    SLOEngine,
    SLORule,
    evaluate_once,
    load_rules,
    threshold_rules,
)


def _rule(**overrides):
    base = {"name": "r", "metric": "m", "max": 1.0}
    base.update(overrides)
    return SLORule(**base)


# ----------------------------------------------------------------------
# Rule parsing and validation
# ----------------------------------------------------------------------
class TestRuleValidation:
    def test_exactly_one_bound_required(self):
        with pytest.raises(SLOConfigError):
            SLORule(name="r", metric="m")
        with pytest.raises(SLOConfigError):
            SLORule(name="r", metric="m", max=1.0, min=0.5)
        assert _rule().bound == "max"
        assert _rule(max=None, min=0.5).bound == "min"

    def test_bad_fields_rejected(self):
        with pytest.raises(SLOConfigError):
            _rule(for_seconds=-1)
        with pytest.raises(SLOConfigError):
            _rule(hysteresis=1.0)
        with pytest.raises(SLOConfigError):
            _rule(hysteresis=-0.1)
        with pytest.raises(SLOConfigError):
            _rule(severity="fatal")
        with pytest.raises(SLOConfigError):
            SLORule(name="", metric="m", max=1.0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SLOConfigError, match="unknown keys"):
            SLORule.from_dict({"name": "r", "metric": "m", "max": 1.0,
                               "treshold": 2.0})
        with pytest.raises(SLOConfigError):
            SLORule.from_dict(["not", "an", "object"])

    def test_from_dict_coerces_and_defaults(self):
        rule = SLORule.from_dict({"name": "r", "metric": "m", "max": "0.1",
                                  "for_seconds": "5"})
        assert rule.threshold == 0.1
        assert rule.for_seconds == 5.0
        assert rule.severity == "critical"

    def test_load_rules_list_and_wrapped_forms(self, tmp_path):
        doc = [{"name": "a", "metric": "m", "max": 1.0},
               {"name": "b", "metric": "m", "min": 0.5,
                "severity": "warning"}]
        plain = tmp_path / "rules.json"
        plain.write_text(json.dumps(doc), encoding="utf-8")
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"rules": doc}), encoding="utf-8")
        assert [r.name for r in load_rules(plain)] == ["a", "b"]
        assert [r.name for r in load_rules(wrapped)] == ["a", "b"]

    def test_load_rules_rejects_duplicates_and_non_lists(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            [{"name": "a", "metric": "m", "max": 1.0},
             {"name": "a", "metric": "n", "max": 2.0}]), encoding="utf-8")
        with pytest.raises(SLOConfigError, match="duplicate"):
            load_rules(path)
        path.write_text('{"no_rules": true}', encoding="utf-8")
        with pytest.raises(SLOConfigError):
            load_rules(path)
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(SLOConfigError):
            load_rules(path)


# ----------------------------------------------------------------------
# Evaluation semantics
# ----------------------------------------------------------------------
class TestSustainedFor:
    def test_breach_must_hold_for_duration(self):
        engine = SLOEngine([_rule(for_seconds=10.0)])
        assert engine.evaluate({"m": 2.0}, now=0.0)[0].state == PENDING
        assert engine.evaluate({"m": 2.0}, now=5.0)[0].state == PENDING
        status = engine.evaluate({"m": 2.0}, now=10.0)[0]
        assert status.state == FIRING
        assert status.breach_since == 0.0
        assert engine.ever_fired == {"r"}

    def test_recovery_resets_the_breach_window(self):
        engine = SLOEngine([_rule(for_seconds=10.0)])
        engine.evaluate({"m": 2.0}, now=0.0)
        engine.evaluate({"m": 0.5}, now=5.0)   # clears: window resets
        engine.evaluate({"m": 2.0}, now=8.0)   # new breach starts at 8
        assert engine.evaluate({"m": 2.0}, now=15.0)[0].state == PENDING
        assert engine.evaluate({"m": 2.0}, now=18.0)[0].state == FIRING

    def test_zero_for_seconds_fires_immediately(self):
        engine = SLOEngine([_rule()])
        assert engine.evaluate({"m": 1.5}, now=0.0)[0].state == FIRING

    def test_min_bound_breaches_below(self):
        engine = SLOEngine([_rule(max=None, min=1.0)])
        assert engine.evaluate({"m": 2.0}, now=0.0)[0].state == OK
        assert engine.evaluate({"m": 0.5}, now=1.0)[0].state == FIRING


class TestHysteresis:
    def test_firing_clears_only_past_the_band(self):
        engine = SLOEngine([_rule(max=1.0, hysteresis=0.2)])
        assert engine.evaluate({"m": 1.5}, now=0.0)[0].state == FIRING
        # Back under the threshold but inside the band: still firing.
        assert engine.evaluate({"m": 0.9}, now=1.0)[0].state == FIRING
        # At/below threshold * (1 - hysteresis) = 0.8: resolves.
        assert engine.evaluate({"m": 0.8}, now=2.0)[0].state == OK
        # ever_fired is sticky even after resolution (the exit gate).
        assert engine.breached() == ["r"]

    def test_min_bound_hysteresis(self):
        engine = SLOEngine([_rule(max=None, min=1.0, hysteresis=0.1)])
        engine.evaluate({"m": 0.5}, now=0.0)
        assert engine.evaluate({"m": 1.05}, now=1.0)[0].state == FIRING
        assert engine.evaluate({"m": 1.1}, now=2.0)[0].state == OK


class TestNoData:
    def test_absent_metric_is_no_data_not_ok(self):
        engine = SLOEngine([_rule()])
        status = engine.evaluate({}, now=0.0)[0]
        assert status.state == NO_DATA
        assert status.value is None
        assert not status.firing

    def test_losing_the_signal_keeps_a_firing_rule_firing(self):
        engine = SLOEngine([_rule()])
        assert engine.evaluate({"m": 2.0}, now=0.0)[0].state == FIRING
        assert engine.evaluate({}, now=1.0)[0].state == FIRING
        # The metric returning below threshold resolves it.
        assert engine.evaluate({"m": 0.5}, now=2.0)[0].state == OK

    def test_no_data_drops_a_pending_window(self):
        engine = SLOEngine([_rule(for_seconds=10.0)])
        engine.evaluate({"m": 2.0}, now=0.0)       # pending since 0
        engine.evaluate({}, now=5.0)               # window dropped
        engine.evaluate({"m": 2.0}, now=8.0)       # new window at 8
        assert engine.evaluate({"m": 2.0}, now=15.0)[0].state == PENDING


class TestSeverityGate:
    def test_breached_filters_by_severity_floor(self):
        rules = [_rule(name="warn", severity="warning"),
                 _rule(name="crit", severity="critical")]
        engine = SLOEngine(rules)
        engine.evaluate({"m": 2.0}, now=0.0)
        assert engine.breached("critical") == ["crit"]
        assert engine.breached("warning") == ["crit", "warn"]

    def test_status_message_mentions_rule_and_state(self):
        engine = SLOEngine([_rule(name="qrate", for_seconds=5.0)])
        status = engine.evaluate({"m": 2.0}, now=0.0)[0]
        text = status.message()
        assert "qrate" in text and "pending" in text
        assert "sustained-for=5s" in text
        absent = evaluate_once([_rule()], {})[0]
        assert "absent" in absent.message()


# ----------------------------------------------------------------------
# Compiled legacy thresholds and one-shot evaluation
# ----------------------------------------------------------------------
class TestThresholdRules:
    def test_flags_compile_to_instantaneous_rules(self):
        rules = threshold_rules(max_quarantine_rate=0.1,
                                max_divergence_rate=0.2,
                                min_throughput=0.5,
                                max_stalled_workers=0)
        by_name = {r.name: r for r in rules}
        assert set(by_name) == {"quarantine-rate", "divergence-rate",
                                "throughput-floor", "stalled-workers"}
        assert by_name["quarantine-rate"].max == 0.1
        assert by_name["throughput-floor"].min == 0.5
        assert all(r.for_seconds == 0.0 for r in rules)

    def test_no_flags_no_rules(self):
        assert threshold_rules() == []

    def test_evaluate_once_matches_flag_behaviour(self):
        rules = threshold_rules(max_quarantine_rate=0.1)
        flat = {"campaign.quarantine_rate": 0.25}
        statuses = evaluate_once(rules, flat)
        assert statuses[0].firing
        assert not evaluate_once(rules,
                                 {"campaign.quarantine_rate": 0.05})[0].firing
