"""Tests for the simulated synchronous data-parallel trainer."""

import numpy as np
import pytest

from repro.distributed import SyncDataParallelTrainer, reseed_random_layers
from repro.workloads import build_workload


class TestGradientAveraging:
    def test_multi_device_gradients_aligned_with_single_device(self):
        """With BatchNorm, per-shard batch statistics make sharded
        gradients differ from full-batch gradients, but the averaged
        gradient must still point the same way (cosine similarity)."""
        spec1 = build_workload("resnet", size="tiny", seed=0)
        spec2 = build_workload("resnet", size="tiny", seed=0)
        one = SyncDataParallelTrainer(spec1, num_devices=1, seed=0, test_every=0)
        four = SyncDataParallelTrainer(spec2, num_devices=4, seed=0, test_every=0)
        one.run_iteration(0)
        four.run_iteration(0)
        g1 = np.concatenate([p.grad.reshape(-1) for p in one.master.parameters()])
        g4 = np.concatenate([p.grad.reshape(-1) for p in four.master.parameters()])
        cosine = float(g1 @ g4 / (np.linalg.norm(g1) * np.linalg.norm(g4) + 1e-12))
        assert cosine > 0.8

    def test_multi_device_exact_without_bn(self):
        """With no BatchNorm the only per-shard nonlinearity in gradient
        aggregation is float reassociation: results must agree tightly."""
        spec1 = build_workload("multigrid", size="tiny", seed=0)
        spec2 = build_workload("multigrid", size="tiny", seed=0)
        one = SyncDataParallelTrainer(spec1, num_devices=1, seed=0, test_every=0)
        four = SyncDataParallelTrainer(spec2, num_devices=4, seed=0, test_every=0)
        one.train(3)
        four.train(3)
        for a, b in zip(one.master.parameters(), four.master.parameters()):
            assert np.allclose(a.data, b.data, rtol=1e-3, atol=1e-5)


class TestReplicaConsistency:
    def test_weights_broadcast_each_iteration(self, make_trainer):
        trainer = make_trainer(num_devices=3)
        trainer.train(2)
        master = list(trainer.master.parameters())
        for replica in trainer.replicas[1:]:
            for pm, pr in zip(master, replica.parameters()):
                assert np.array_equal(pm.data, pr.data)

    def test_bn_stats_are_per_device(self, make_trainer):
        """BatchNorm moving statistics are device-local (Sec. 4.3.3) —
        different shards give different statistics."""
        from repro.nn.normalization import batchnorm_layers

        trainer = make_trainer(num_devices=2)
        trainer.train(3)
        bn0 = batchnorm_layers(trainer.replicas[0])[0]
        bn1 = batchnorm_layers(trainer.replicas[1])[0]
        assert not np.array_equal(bn0.moving_var, bn1.moving_var)


class TestTrainingLoop:
    def test_record_lengths(self, make_trainer):
        trainer = make_trainer(test_every=5)
        trainer.train(10)
        assert trainer.record.num_iterations == 10
        assert len(trainer.record.test_iterations) == 2
        assert len(trainer.record.history_magnitude) == 10

    def test_learning_happens(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        rec = trainer.train(40)
        assert rec.final_train_accuracy() > rec.train_acc[0] + 0.2

    def test_stops_on_nonfinite(self, make_trainer):
        trainer = make_trainer()

        class Poison:
            def after_backward(self, tr, iteration):
                if iteration == 3:
                    next(iter(tr.master.parameters())).grad[:] = np.nan

        trainer.add_hook(Poison())
        rec = trainer.train(10)
        assert rec.nonfinite_at == 3
        assert rec.num_iterations == 4

    def test_continue_on_nonfinite_when_disabled(self, make_trainer):
        trainer = make_trainer(stop_on_nonfinite=False)

        class Poison:
            def after_backward(self, tr, iteration):
                if iteration == 2:
                    next(iter(tr.master.parameters())).grad[:] = np.inf

        trainer.add_hook(Poison())
        rec = trainer.train(6)
        assert rec.nonfinite_at == 2
        assert rec.num_iterations == 6

    def test_invalid_device_count(self, tiny_resnet_spec):
        with pytest.raises(ValueError):
            SyncDataParallelTrainer(tiny_resnet_spec, num_devices=0)


class TestHooks:
    def test_hook_order_and_events(self, make_trainer):
        events = []

        class Probe:
            def before_iteration(self, tr, t):
                events.append(("before", t))

            def after_backward(self, tr, t):
                events.append(("backward", t))

            def after_step(self, tr, t):
                events.append(("step", t))

            def after_iteration(self, tr, t, loss, acc):
                events.append(("after", t))

        trainer = make_trainer()
        trainer.add_hook(Probe())
        trainer.train(2)
        assert events == [
            ("before", 0), ("backward", 0), ("step", 0), ("after", 0),
            ("before", 1), ("backward", 1), ("step", 1), ("after", 1),
        ]


class TestEvaluation:
    def test_eval_uses_device_replica(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        trainer.train(5)
        # Corrupt device 1's BN stats: its eval accuracy should collapse
        # while device 0 stays fine (LowTestAccuracy locality).
        from repro.nn.normalization import batchnorm_layers

        for bn in batchnorm_layers(trainer.replicas[1]):
            bn.moving_var[:] = 1e30
        acc0 = trainer.evaluate(device=0)
        acc1 = trainer.evaluate(device=1)
        assert acc0 > acc1

    def test_models_back_in_train_mode_after_eval(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        trainer.train(2)
        trainer.evaluate()
        assert all(m.training for m in trainer.replicas[0].modules())


class TestReseed:
    def test_reseed_random_layers(self, rng):
        from repro import nn

        model = nn.Sequential(nn.Dense(4, 4, rng), nn.Dropout(0.5, seed=0))
        x = rng.normal(size=(16, 4)).astype(np.float32)
        reseed_random_layers(model, (7, 0))
        a = model.forward(x)
        reseed_random_layers(model, (7, 0))
        b = model.forward(x)
        assert np.array_equal(a, b)


class TestDeterminism:
    def test_identical_seeds_identical_trajectories(self):
        """Two trainers with the same seed follow bit-identical paths —
        the foundation of campaign reproducibility and exact recovery."""
        a = SyncDataParallelTrainer(build_workload("resnet", size="tiny", seed=0),
                                    num_devices=2, seed=0, test_every=0)
        b = SyncDataParallelTrainer(build_workload("resnet", size="tiny", seed=0),
                                    num_devices=2, seed=0, test_every=0)
        a.train(6)
        b.train(6)
        for (n1, p1), (n2, p2) in zip(a.master.named_parameters(),
                                      b.master.named_parameters()):
            assert np.array_equal(p1.data, p2.data), n1
        assert a.record.train_loss == b.record.train_loss

    def test_different_seeds_differ(self):
        a = SyncDataParallelTrainer(build_workload("resnet", size="tiny", seed=0),
                                    num_devices=2, seed=0, test_every=0)
        b = SyncDataParallelTrainer(build_workload("resnet", size="tiny", seed=0),
                                    num_devices=2, seed=1, test_every=0)
        a.train(3)
        b.train(3)
        assert a.record.train_loss != b.record.train_loss
