"""Golden-trace regression: the fused state layer must be numerically
invisible.

``tests/data/golden_traces.json`` holds convergence traces (loss,
accuracy, gradient-history magnitude, mvar magnitude, test accuracy)
recorded **before** the ``repro.state`` refactor, stored as ``float.hex``
strings so the comparison is bit-exact, plus a sha256 digest over the
final parameter / optimizer-slot / extra-state bytes.  Any change that
perturbs a single ULP anywhere in the training loop fails here.
"""

import json
from pathlib import Path

import pytest

from repro.distributed import SyncDataParallelTrainer
from repro.observe import ITERATION_STATS, Tracer
from repro.state import training_state_digest as state_digest
from repro.workloads import build_workload, workload_names

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_traces.json"

TRACE_FIELDS = [
    ("loss", "train_loss"),
    ("acc", "train_acc"),
    ("hist", "history_magnitude"),
    ("mvar", "mvar_magnitude"),
    ("test_acc", "test_acc"),
]


def load_cases():
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    return golden["cases"]


@pytest.mark.parametrize("backend", ["inprocess", "multiprocess", "batched"])
@pytest.mark.parametrize("case", load_cases(), ids=lambda c: c["workload"])
def test_training_is_bit_identical_to_golden_trace(case, backend):
    """Both execution backends must reproduce the pre-refactor traces:
    the multi-process runtime's collectives are order-pinned to the
    central-server arithmetic these goldens were recorded with."""
    spec = build_workload(case["workload"], size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(
        spec,
        num_devices=case["num_devices"],
        seed=0,
        test_every=case["test_every"],
        backend=backend,
    )
    # The golden traces were recorded pre-refactor; this run must take
    # the fused path to prove the fused path is numerically invisible.
    assert trainer.arenas is not None, "state arena was not built"

    try:
        trainer.train(case["iterations"])
    finally:
        trainer.close()

    record = trainer.record
    for field, attr in TRACE_FIELDS:
        got = [float(v).hex() for v in getattr(record, attr)]
        assert got == case[field], (
            f"{case['workload']}: {attr} trace diverged from golden "
            f"(first mismatch at index "
            f"{next(i for i, (a, b) in enumerate(zip(case[field], got)) if a != b)})"
        )
    assert state_digest(trainer) == case["state_sha256"], (
        f"{case['workload']}: final state digest diverged from golden"
    )


# ----------------------------------------------------------------------
# Differential: the observability layer must be numerically invisible
# ----------------------------------------------------------------------
DIFFERENTIAL_ITERATIONS = 3


def _hex_trace(record) -> dict[str, list]:
    return {
        attr: [None if v is None else float(v).hex()
               for v in getattr(record, attr)]
        for _, attr in TRACE_FIELDS
    }


def _run_workload(workload: str, tracer: Tracer | None):
    spec = build_workload(workload, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0,
                                      test_every=2, tracer=tracer)
    trainer.train(DIFFERENTIAL_ITERATIONS)
    return trainer


@pytest.mark.parametrize("workload", workload_names())
def test_tracing_is_numerically_invisible(workload):
    """Every registry workload, traced vs untraced, must produce
    bit-identical loss/accuracy/condition traces and final state: the
    tracer only reads values the loop already computed."""
    tracer = Tracer()
    traced = _run_workload(workload, tracer)
    untraced = _run_workload(workload, None)

    assert _hex_trace(traced.record) == _hex_trace(untraced.record), (
        f"{workload}: tracing perturbed the convergence record"
    )
    assert state_digest(traced) == state_digest(untraced), (
        f"{workload}: tracing perturbed the final training state"
    )
    # And the trace itself carries the iteration statistics, bit-exact.
    stats = tracer.events(ITERATION_STATS)
    assert [e.iteration for e in stats] == list(range(DIFFERENTIAL_ITERATIONS))
    assert [float(e.data["loss"]).hex() for e in stats] == \
        [float(v).hex() for v in traced.record.train_loss]
