"""Golden-trace regression: the fused state layer must be numerically
invisible.

``tests/data/golden_traces.json`` holds convergence traces (loss,
accuracy, gradient-history magnitude, mvar magnitude, test accuracy)
recorded **before** the ``repro.state`` refactor, stored as ``float.hex``
strings so the comparison is bit-exact, plus a sha256 digest over the
final parameter / optimizer-slot / extra-state bytes.  Any change that
perturbs a single ULP anywhere in the training loop fails here.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_traces.json"

TRACE_FIELDS = [
    ("loss", "train_loss"),
    ("acc", "train_acc"),
    ("hist", "history_magnitude"),
    ("mvar", "mvar_magnitude"),
    ("test_acc", "test_acc"),
]


def load_cases():
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    return golden["cases"]


def state_digest(trainer) -> str:
    """sha256 over final params, optimizer slots, and per-replica extra
    state (BatchNorm moving statistics), in a deterministic order."""
    h = hashlib.sha256()
    for name, param in sorted(trainer.master.named_parameters()):
        h.update(name.encode())
        h.update(param.data.tobytes())
    opt = trainer.optimizer.state_dict()
    for key in sorted(k for k in opt if k not in ("iteration", "lr")):
        for arr in opt[key]:
            h.update(arr.tobytes())
    for replica in trainer.replicas:
        for _mod_name, module in sorted(replica.named_modules()):
            for _k, v in sorted(module.extra_state().items()):
                h.update(v.tobytes())
    return h.hexdigest()


@pytest.mark.parametrize("case", load_cases(), ids=lambda c: c["workload"])
def test_training_is_bit_identical_to_golden_trace(case):
    spec = build_workload(case["workload"], size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(
        spec,
        num_devices=case["num_devices"],
        seed=0,
        test_every=case["test_every"],
    )
    # The golden traces were recorded pre-refactor; this run must take
    # the fused path to prove the fused path is numerically invisible.
    assert trainer.arenas is not None, "state arena was not built"

    trainer.train(case["iterations"])

    record = trainer.record
    for field, attr in TRACE_FIELDS:
        got = [float(v).hex() for v in getattr(record, attr)]
        assert got == case[field], (
            f"{case['workload']}: {attr} trace diverged from golden "
            f"(first mismatch at index "
            f"{next(i for i, (a, b) in enumerate(zip(case[field], got)) if a != b)})"
        )
    assert state_digest(trainer) == case["state_sha256"], (
        f"{case['workload']}: final state digest diverged from golden"
    )
