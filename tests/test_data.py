"""Tests for datasets and the replayable loader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    BatchLoader,
    Dataset,
    detection_cell_accuracy,
    make_detection_dataset,
    make_image_classification,
    make_maze_dataset,
    make_translation_dataset,
    train_test_split,
)


class TestImageClassification:
    def test_shapes_and_normalization(self):
        ds = make_image_classification(num_samples=128, num_classes=5, image_size=8)
        assert ds.inputs.shape == (128, 3, 8, 8)
        assert ds.targets.shape == (128,)
        assert ds.num_classes == 5
        # Algorithm 1 Property 2: zero mean, unit variance.
        assert abs(ds.inputs.mean()) < 1e-3
        assert ds.inputs.std() == pytest.approx(1.0, abs=1e-3)

    def test_deterministic(self):
        a = make_image_classification(num_samples=16, seed=3)
        b = make_image_classification(num_samples=16, seed=3)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.targets, b.targets)

    def test_classes_separable(self):
        """Same-class samples are closer than cross-class on average."""
        ds = make_image_classification(num_samples=200, num_classes=4, seed=0)
        flat = ds.inputs.reshape(len(ds), -1)
        same, cross = [], []
        for i in range(0, 100, 5):
            for j in range(i + 1, 100, 7):
                d = float(np.linalg.norm(flat[i] - flat[j]))
                (same if ds.targets[i] == ds.targets[j] else cross).append(d)
        assert np.mean(same) < np.mean(cross)

    def test_split(self):
        ds = make_image_classification(num_samples=100)
        train, test = train_test_split(ds, test_fraction=0.2)
        assert len(train) == 80
        assert len(test) == 20

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4), 2)


class TestDetectionDataset:
    def test_target_layout(self):
        ds = make_detection_dataset(num_samples=32, num_classes=4, grid_size=4)
        assert ds.targets.shape == (32, 9, 4, 4)
        # Exactly one object cell per image.
        assert np.all(ds.targets[:, 4].reshape(32, -1).sum(axis=1) == 1.0)
        # Class one-hot matches labels.
        cls = ds.targets[:, 5:].sum(axis=(2, 3)).argmax(axis=1)
        assert np.array_equal(cls, ds.labels)

    def test_cell_accuracy_perfect(self):
        ds = make_detection_dataset(num_samples=8, seed=1)
        pred = ds.targets.copy()
        pred[:, 4] = np.where(pred[:, 4] > 0.5, 10.0, -10.0)  # logits
        pred[:, 5:] *= 10.0
        assert detection_cell_accuracy(pred, ds.targets) == 1.0

    def test_cell_accuracy_nan_is_zero(self):
        ds = make_detection_dataset(num_samples=4, seed=1)
        pred = np.full_like(ds.targets, np.nan)
        assert detection_cell_accuracy(pred, ds.targets) == 0.0


class TestMazeDataset:
    def test_shapes(self):
        ds = make_maze_dataset(num_samples=64, sequence_length=10)
        assert ds.inputs.shape == (64, 10, 4)
        assert set(np.unique(ds.targets)).issubset({0, 1, 2, 3})

    def test_labels_follow_walk(self):
        """The quadrant label is a function of the observation sequence."""
        ds = make_maze_dataset(num_samples=64, seed=5)
        a = make_maze_dataset(num_samples=64, seed=5)
        assert np.array_equal(ds.targets, a.targets)


class TestTranslationDataset:
    def test_reversal_with_permutation(self):
        ds = make_translation_dataset(num_samples=16, vocab_size=10, sequence_length=6)
        perm = ds.permutation
        for i in range(16):
            expected = perm[ds.inputs[i][::-1] - 1]
            assert np.array_equal(ds.targets[i], expected)

    def test_tokens_avoid_padding(self):
        ds = make_translation_dataset(num_samples=64)
        assert ds.inputs.min() >= 1
        assert ds.targets.min() >= 1


class TestBatchLoader:
    @pytest.fixture
    def dataset(self):
        return make_image_classification(num_samples=64, seed=0)

    def test_batches_per_epoch(self, dataset):
        assert BatchLoader(dataset, 16).batches_per_epoch == 4
        assert BatchLoader(dataset, 10).batches_per_epoch == 6
        assert BatchLoader(dataset, 10, drop_last=False).batches_per_epoch == 7

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_batch_at_is_pure(self, iteration):
        """The core recovery requirement: the batch of any iteration is a
        pure function of (seed, iteration)."""
        ds = make_image_classification(num_samples=48, seed=1)
        loader_a = BatchLoader(ds, 16, base_seed=9)
        loader_b = BatchLoader(ds, 16, base_seed=9)
        xa, ya = loader_a.batch_at(iteration)
        xb, yb = loader_b.batch_at(iteration)
        assert np.array_equal(xa, xb)
        assert np.array_equal(ya, yb)

    def test_epoch_covers_dataset_once(self, dataset):
        loader = BatchLoader(dataset, 16, base_seed=0)
        seen = []
        for step in range(loader.batches_per_epoch):
            _, y = loader.batch_at(step)
            seen.append(y)
        # Each epoch is a permutation: batch targets multiset == dataset's.
        assert sorted(np.concatenate(seen).tolist()) == sorted(dataset.targets.tolist())

    def test_different_epochs_differ(self, dataset):
        loader = BatchLoader(dataset, 16, base_seed=0)
        x0, _ = loader.batch_at(0)
        x1, _ = loader.batch_at(loader.batches_per_epoch)  # same step, next epoch
        assert not np.array_equal(x0, x1)

    def test_shards_partition_batch(self, dataset):
        loader = BatchLoader(dataset, 16, base_seed=0)
        full_x, full_y = loader.batch_at(3)
        parts = [loader.shard_batch_at(3, d, 4) for d in range(4)]
        assert np.array_equal(np.concatenate([p[0] for p in parts]), full_x)
        assert np.array_equal(np.concatenate([p[1] for p in parts]), full_y)

    def test_invalid_args(self, dataset):
        with pytest.raises(ValueError):
            BatchLoader(dataset, 0)
        with pytest.raises(ValueError):
            BatchLoader(dataset, 1000)
        loader = BatchLoader(dataset, 16)
        with pytest.raises(ValueError):
            loader.batch_at(-1)
        with pytest.raises(ValueError):
            loader.shard_batch_at(0, 5, 4)
        with pytest.raises(ValueError):
            loader.shard_batch_at(0, 0, 32)

    def test_permutation_cache_bounded(self, dataset):
        loader = BatchLoader(dataset, 16, base_seed=0)
        for epoch in range(20):
            loader.batch_at(epoch * loader.batches_per_epoch)
        assert len(loader._perm_cache) <= 8
