"""Tests for :mod:`repro.backend`: pluggable execution backends.

Three contracts are pinned here:

* **Collective determinism** — the order-pinned ring ``all_reduce_mean``
  is bit-identical to the naive central-server mean the in-process
  simulator computes, for real gradients of every registry workload and
  for any chunking.
* **Cross-backend bit-identity** — training (fault-free, device faults,
  comm faults) produces byte-equal convergence records and final state
  under the in-process and multi-process backends, including the
  paper-scale 8-replica topology.
* **Robustness** — a killed replica surfaces as the ``ReplicaLost``
  outcome with no shared-memory leak, a straggling replica is flagged in
  telemetry while the collective keeps waiting, and a hard collective
  timeout aborts cleanly.
"""

import hashlib
from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.accelerator.ffs import FFDescriptor
from repro.backend import (
    CollectiveTimeoutError,
    MultiProcessBackend,
    ReplicaChaos,
    all_reduce_mean,
    device_step,
)
from repro.core.analysis.classify import Outcome, classify_outcome
from repro.core.faults import (
    COMM,
    LINK_SITE,
    CommFaultInjector,
    FaultInjector,
    HardwareFault,
    OpSite,
)
from repro.distributed import SyncDataParallelTrainer
from repro.observe import STRAGGLER_DETECTED, Tracer
from repro.workloads import build_workload, workload_names

RECORD_FIELDS = ("train_loss", "train_acc", "history_magnitude",
                 "mvar_magnitude", "test_acc")


def record_hex(record) -> dict[str, list]:
    """Bit-exact view of a convergence record's float traces."""
    return {
        field: [None if v is None else float(v).hex()
                for v in getattr(record, field)]
        for field in RECORD_FIELDS
    }


def state_digest(trainer) -> str:
    """sha256 over final params, optimizer slots, and per-replica extra
    state, mirroring the golden-trace digest."""
    h = hashlib.sha256()
    for name, param in sorted(trainer.master.named_parameters()):
        h.update(name.encode())
        h.update(param.data.tobytes())
    opt = trainer.optimizer.state_dict()
    for key in sorted(k for k in opt if k not in ("iteration", "lr")):
        for arr in opt[key]:
            h.update(arr.tobytes())
    for replica in trainer.replicas:
        for _mod_name, module in sorted(replica.named_modules()):
            for _k, v in sorted(module.extra_state().items()):
                h.update(v.tobytes())
    return h.hexdigest()


def make_trainer(workload="resnet", num_devices=2, backend="inprocess",
                 test_every=0, **kwargs) -> SyncDataParallelTrainer:
    spec = build_workload(workload, size="tiny", seed=0)
    return SyncDataParallelTrainer(spec, num_devices=num_devices, seed=0,
                                   test_every=test_every, backend=backend,
                                   **kwargs)


# ----------------------------------------------------------------------
# Property: pinned ring == central-server mean (satellite 2)
# ----------------------------------------------------------------------
class TestAllReduceMeanProperty:
    @pytest.mark.parametrize("workload", workload_names())
    def test_pinned_ring_matches_central_server_mean(self, workload):
        """For every registry workload's real first-iteration gradients,
        the chunked ring reduction must be bit-identical to the
        sequential central-server sum, at any chunk size."""
        trainer = make_trainer(workload, num_devices=4)
        assert trainer.arenas is not None, "workload lost its fused arena"
        for device in range(trainer.num_devices):
            device_step(trainer, device, 0)
        grads = [arena.grad.copy() for arena in trainer.arenas]
        total = grads[0].size

        # The central-server reference: ascending-rank sum, one multiply.
        acc = np.zeros(total, dtype=np.float32)
        for g in grads:
            acc += g
        expected = np.empty(total, dtype=np.float32)
        np.multiply(acc, 1.0 / len(grads), out=expected)

        for chunk in (1 << 16, 17):  # default and a pathological chunking
            out = np.empty(total, dtype=np.float32)
            all_reduce_mean(grads, out=out, chunk=chunk)
            assert out.tobytes() == expected.tobytes(), (
                f"{workload}: ring mean diverged at chunk={chunk}")

    def test_out_may_alias_rank_zero(self, rng):
        """The master gradient segment is both rank-0 input and the
        destination; aliasing must not perturb the result."""
        buffers = [rng.normal(size=1000).astype(np.float32) for _ in range(3)]
        acc = np.zeros(1000, dtype=np.float32)
        for b in buffers:
            acc += b
        expected = np.empty(1000, dtype=np.float32)
        np.multiply(acc, 1.0 / 3, out=expected)
        out = all_reduce_mean(buffers, out=buffers[0], chunk=64)
        assert out.tobytes() == expected.tobytes()

    def test_fault_hook_applied_once_to_reduced_buffer(self, rng):
        buffers = [rng.normal(size=64).astype(np.float32) for _ in range(2)]
        calls = []

        def hook(reduced):
            calls.append(reduced.copy())
            faulty = reduced.copy()
            faulty[7] = np.float32(1e30)
            return faulty

        out = np.empty(64, dtype=np.float32)
        all_reduce_mean(buffers, out=out, fault_hook=hook)
        assert len(calls) == 1
        assert out[7] == np.float32(1e30)
        clean = np.delete(out, 7)
        assert np.array_equal(clean, np.delete(calls[0], 7))


# ----------------------------------------------------------------------
# Cross-backend bit-identity (tentpole + satellite 2)
# ----------------------------------------------------------------------
class TestCrossBackendIdentity:
    def _train_both(self, workload="resnet", num_devices=2, iterations=6,
                    test_every=3, hook_factory=None):
        results = {}
        for backend in ("inprocess", "multiprocess"):
            trainer = make_trainer(workload, num_devices=num_devices,
                                   backend=backend, test_every=test_every,
                                   stop_on_nonfinite=False)
            hook = hook_factory() if hook_factory is not None else None
            if hook is not None:
                trainer.add_hook(hook)
            try:
                trainer.train(iterations)
            finally:
                trainer.close()
            results[backend] = (trainer, hook)
        return results

    def test_training_is_bit_identical(self):
        results = self._train_both()
        inproc, _ = results["inprocess"]
        multi, _ = results["multiprocess"]
        assert record_hex(inproc.record) == record_hex(multi.record)
        assert state_digest(inproc) == state_digest(multi)

    def test_eight_replica_topology_is_bit_identical(self):
        """The paper-scale topology: 8 replicas, one process each."""
        results = self._train_both(num_devices=8, iterations=3, test_every=0)
        inproc, _ = results["inprocess"]
        multi, _ = results["multiprocess"]
        assert record_hex(inproc.record) == record_hex(multi.record)
        assert state_digest(inproc) == state_digest(multi)

    def test_device_fault_is_bit_identical(self):
        """A shipped DeviceFaultPlan must fire in the replica process
        with the exact draws the in-process injector would make."""
        def fault_hook():
            ff = FFDescriptor("global_control", group=1, has_feedback=True)
            fault = HardwareFault(ff=ff, site=OpSite("1.conv1", "weight_grad"),
                                  iteration=2, device=1, seed=3)
            return FaultInjector(fault)

        results = self._train_both(iterations=5, test_every=0,
                                   hook_factory=fault_hook)
        inproc, hook_in = results["inprocess"]
        multi, hook_mp = results["multiprocess"]
        assert hook_in.fired and hook_mp.fired
        assert hook_in.record.num_faulty == hook_mp.record.num_faulty
        assert hook_in.record.max_abs_faulty() == hook_mp.record.max_abs_faulty()
        assert record_hex(inproc.record) == record_hex(multi.record)

    def test_comm_fault_is_bit_identical(self):
        """Link faults hit the identical point of the reduction under
        both backends (the in-flight mean, pre-optimizer)."""
        def fault_hook():
            ff = FFDescriptor("datapath", bit=30)
            fault = HardwareFault(ff=ff, site=OpSite(LINK_SITE, COMM),
                                  iteration=2, device=0, seed=7)
            return CommFaultInjector(fault)

        results = self._train_both(iterations=5, test_every=0,
                                   hook_factory=fault_hook)
        inproc, hook_in = results["inprocess"]
        multi, hook_mp = results["multiprocess"]
        assert hook_in.fired and hook_mp.fired
        assert hook_in.record.num_faulty == hook_mp.record.num_faulty
        assert record_hex(inproc.record) == record_hex(multi.record)
        assert state_digest(inproc) == state_digest(multi)

    def test_unknown_backend_name_rejected(self):
        spec = build_workload("resnet", size="tiny", seed=0)
        with pytest.raises(ValueError, match="unknown execution backend"):
            SyncDataParallelTrainer(spec, num_devices=2, backend="gpu")


# ----------------------------------------------------------------------
# Gradient-accumulation buffers are pre-allocated (satellite 1)
# ----------------------------------------------------------------------
class TestPreallocatedBuffers:
    def test_inprocess_accumulator_is_reused(self):
        trainer = make_trainer()
        buf = trainer.backend._grad_accum
        assert buf is not None
        trainer.train(2)
        assert trainer.backend._grad_accum is buf

    def test_multiprocess_scratch_is_reused(self):
        trainer = make_trainer(backend="multiprocess")
        try:
            trainer.train(2)
            scratch = trainer.backend._scratch
            assert scratch is not None
            trainer.train(1)
            assert trainer.backend._scratch is scratch
        finally:
            trainer.close()


# ----------------------------------------------------------------------
# Robustness: replica loss, stragglers, timeouts (satellite 3)
# ----------------------------------------------------------------------
class TestReplicaLoss:
    def test_killed_replica_aborts_cleanly_and_unlinks_shm(self):
        backend = MultiProcessBackend(
            chaos=(ReplicaChaos(device=1, iteration=2, kind="kill"),))
        trainer = make_trainer(backend=backend)
        trainer.backend.start()
        names = [shm.name for shm in backend._segments]
        assert names, "backend did not map shared segments"

        record = trainer.train(5)
        assert record.replica_lost_at == 2
        assert record.replica_lost_device == 1
        # Iterations 0 and 1 completed; the aborted one is not recorded.
        assert len(record.train_loss) == 2
        # Abort means teardown: every shared segment must be unlinked.
        for name in names:
            with pytest.raises(FileNotFoundError):
                leaked = SharedMemory(name=name)
                leaked.close()

    def test_replica_lost_is_its_own_outcome(self):
        backend = MultiProcessBackend(
            chaos=(ReplicaChaos(device=0, iteration=1, kind="kill"),))
        faulty = make_trainer(backend=backend)
        faulty.train(4)
        reference = make_trainer()
        reference.train(4)
        report = classify_outcome(faulty.record, reference.record,
                                  injection_iteration=1)
        assert report.outcome is Outcome.REPLICA_LOST
        assert report.is_unexpected
        assert report.details["replica_lost_at"] == 1

    def test_trainer_state_remains_readable_after_close(self):
        trainer = make_trainer(backend="multiprocess")
        trainer.train(2)
        trainer.close()
        digest = state_digest(trainer)
        trainer.close()  # idempotent
        assert state_digest(trainer) == digest
        assert np.isfinite(trainer.master_arena.param).all()


class TestStragglers:
    def test_straggler_is_flagged_in_telemetry_and_trace(self):
        tracer = Tracer()
        backend = MultiProcessBackend(
            timeout=0.05, hard_timeout=60.0,
            chaos=(ReplicaChaos(device=0, iteration=1, kind="delay",
                                seconds=0.4),))
        trainer = make_trainer(backend=backend, tracer=tracer)
        try:
            record = trainer.train(3)
        finally:
            trainer.close()
        # The collective waited the straggler out: training completed.
        assert len(record.train_loss) == 3
        # On a loaded box other replicas may be flagged too (the timeout
        # is tight by design); the delayed replica must be among them.
        matching = [e for e in backend.straggler_events
                    if e["device"] == 0 and e["iteration"] == 1]
        assert matching, f"straggler not flagged: {backend.straggler_events}"
        event = matching[0]
        assert event["phase"] == "step"
        assert event["waited"] >= event["timeout"]
        emitted = tracer.events(STRAGGLER_DETECTED)
        assert any(e.data["device"] == 0 and e.iteration == 1
                   for e in emitted)

    def test_hard_timeout_aborts_the_collective(self):
        backend = MultiProcessBackend(
            timeout=0.05, hard_timeout=0.15,
            chaos=(ReplicaChaos(device=1, iteration=1, kind="delay",
                                seconds=1.0),))
        trainer = make_trainer(backend=backend)
        with pytest.raises(CollectiveTimeoutError, match="timed out"):
            trainer.train(3)
        # The straggler was flagged before the abort, and the abort
        # tore the backend down.
        assert backend.straggler_events
        assert backend._closed

    def test_barrier_roundtrip(self):
        trainer = make_trainer(backend="multiprocess")
        try:
            trainer.train(1)
            trainer.backend.barrier()
        finally:
            trainer.close()
        trainer.backend.barrier()  # no-op once closed
