"""Tests for attention / Transformer / LSTM layers."""

import numpy as np
import pytest

from repro import nn
from tests.conftest import directional_gradcheck


class TestEmbedding:
    def test_lookup(self, rng):
        emb = nn.Embedding(10, 4, rng)
        tokens = np.array([[1, 2], [3, 1]])
        out = emb.forward(tokens)
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out[0, 0], emb.weight.data[1])

    def test_backward_accumulates_duplicates(self, rng):
        emb = nn.Embedding(10, 4, rng)
        tokens = np.array([[1, 1]])
        emb.forward(tokens)
        emb.zero_grad()
        emb.backward(np.ones((1, 2, 4), dtype=np.float32))
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[2], 0.0)


class TestPositionalEncoding:
    def test_deterministic_and_bounded(self):
        pe = nn.PositionalEncoding(8, max_len=16)
        assert np.all(np.abs(pe.table) <= 1.0)
        x = np.zeros((1, 5, 8), dtype=np.float32)
        out = pe.forward(x)
        assert np.array_equal(out[0], pe.table[:5])

    def test_backward_identity(self, rng):
        pe = nn.PositionalEncoding(8)
        g = rng.normal(size=(2, 4, 8)).astype(np.float32)
        assert np.array_equal(pe.backward(g), g)


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attn = nn.MultiHeadSelfAttention(16, 4, rng)
        x = rng.normal(size=(2, 6, 16)).astype(np.float32)
        assert attn.forward(x).shape == (2, 6, 16)

    def test_dim_divisibility(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3, rng)

    def test_causal_mask_blocks_future(self, rng):
        attn = nn.MultiHeadSelfAttention(8, 2, rng, causal=True)
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        out1 = attn.forward(x)
        # Changing a later position must not affect earlier outputs.
        x2 = x.copy()
        x2[0, 4] += 10.0
        out2 = attn.forward(x2)
        assert np.allclose(out1[0, :4], out2[0, :4], atol=1e-5)

    def test_non_causal_attends_everywhere(self, rng):
        attn = nn.MultiHeadSelfAttention(8, 2, rng, causal=False)
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        out1 = attn.forward(x)
        x2 = x.copy()
        x2[0, 4] += 10.0
        out2 = attn.forward(x2)
        assert not np.allclose(out1[0, 0], out2[0, 0], atol=1e-5)

    def test_gradcheck(self, rng):
        model = nn.Sequential(nn.MultiHeadSelfAttention(8, 2, rng), nn.Dense(8, 3, rng))
        x = rng.normal(size=(3, 4, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=(3, 4))
        loss = nn.SequenceCrossEntropy(pad_id=-1)
        assert directional_gradcheck(model, x, loss, y, rng, eps=2e-3) < 0.05


class TestTransformerEncoderLayer:
    def test_shape_preserved(self, rng):
        layer = nn.TransformerEncoderLayer(16, 4, 32, rng)
        x = rng.normal(size=(2, 6, 16)).astype(np.float32)
        assert layer.forward(x).shape == x.shape

    def test_gradcheck(self, rng):
        model = nn.Sequential(
            nn.TransformerEncoderLayer(8, 2, 16, rng), nn.Dense(8, 4, rng)
        )
        x = rng.normal(size=(2, 5, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=(2, 5))
        loss = nn.SequenceCrossEntropy(pad_id=-1)
        assert directional_gradcheck(model, x, loss, y, rng, eps=2e-3) < 0.05


class TestLSTM:
    def test_output_shape(self, rng):
        lstm = nn.LSTM(4, 8, rng)
        out = lstm.forward(rng.normal(size=(3, 6, 4)).astype(np.float32))
        assert out.shape == (3, 6, 8)

    def test_state_carries_information(self, rng):
        """Changing an early input changes later outputs (memory)."""
        lstm = nn.LSTM(4, 8, rng)
        x = rng.normal(size=(1, 6, 4)).astype(np.float32)
        out1 = lstm.forward(x)
        x2 = x.copy()
        x2[0, 0] += 5.0
        out2 = lstm.forward(x2)
        assert not np.allclose(out1[0, -1], out2[0, -1], atol=1e-5)

    def test_gradcheck(self, rng):
        model = nn.Sequential(nn.LSTM(3, 6, rng), nn.LastStep(), nn.Dense(6, 3, rng))
        x = rng.normal(size=(4, 5, 3)).astype(np.float32)
        y = rng.integers(0, 3, size=4)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng,
                                     eps=2e-3) < 0.05

    def test_forget_bias_initialized_to_one(self, rng):
        lstm = nn.LSTM(4, 8, rng)
        assert np.all(lstm.bias.data[8:16] == 1.0)
        assert np.all(lstm.bias.data[:8] == 0.0)


class TestLastStep:
    def test_selects_last(self, rng):
        x = rng.normal(size=(2, 5, 3)).astype(np.float32)
        layer = nn.LastStep()
        assert np.array_equal(layer.forward(x), x[:, -1])

    def test_backward_routes_to_last(self, rng):
        layer = nn.LastStep()
        x = rng.normal(size=(2, 5, 3)).astype(np.float32)
        layer.forward(x)
        g = layer.backward(np.ones((2, 3), dtype=np.float32))
        assert np.all(g[:, -1] == 1.0)
        assert np.all(g[:, :-1] == 0.0)
