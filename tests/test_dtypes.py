"""Tests for reduced-precision emulation (repro.tensor.dtypes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.dtypes import (
    BFLOAT16_MAX,
    FLOAT32_MAX,
    Precision,
    quantized_matmul,
    saturate_to_inf,
    to_bfloat16,
    to_float16,
    to_int16_saturating,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestBfloat16:
    def test_exact_values_preserved(self):
        # Powers of two and small integers are exactly representable.
        for v in [0.0, 1.0, -1.0, 2.0, 0.5, 0.25, 3.0, -4.0, 1024.0]:
            assert float(to_bfloat16(v)) == v

    def test_rounds_mantissa(self):
        # 1 + 2^-9 is below bfloat16 resolution at 1.0 (7 mantissa bits).
        assert float(to_bfloat16(1.0 + 2.0**-9)) == 1.0
        # 1 + 2^-7 is exactly the next representable value.
        assert float(to_bfloat16(1.0 + 2.0**-7)) == 1.0 + 2.0**-7

    def test_nan_preserved(self):
        assert np.isnan(to_bfloat16(np.float32(np.nan)))

    def test_inf_preserved(self):
        assert np.isposinf(to_bfloat16(np.float32(np.inf)))
        assert np.isneginf(to_bfloat16(np.float32(-np.inf)))

    def test_vectorized(self):
        arr = np.linspace(-5, 5, 101, dtype=np.float32)
        out = to_bfloat16(arr)
        assert out.shape == arr.shape
        assert out.dtype == np.float32

    @given(finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, x):
        once = to_bfloat16(np.float32(x))
        twice = to_bfloat16(once)
        assert np.array_equal(once, twice)

    @given(st.floats(min_value=2.0**-90, max_value=2.0**90, allow_nan=False, width=32))
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bound(self, x):
        # Round-to-nearest with 8 mantissa bits (incl. implicit):
        # relative error <= 2^-8.
        q = float(to_bfloat16(np.float32(x)))
        assert abs(q - x) <= abs(x) * 2.0**-8 + 1e-45

    @given(finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_sign_preserved(self, x):
        q = float(to_bfloat16(np.float32(x)))
        if x != 0.0 and q != 0.0:
            assert np.sign(q) == np.sign(np.float32(x))


class TestOtherPrecisions:
    def test_float16_round_trip(self):
        assert float(to_float16(1.0)) == 1.0
        # 70000 overflows float16 -> inf.
        assert np.isinf(to_float16(70000.0))

    def test_int16_saturates(self):
        assert float(to_int16_saturating(1e9)) == 32767.0
        assert float(to_int16_saturating(-1e9)) == -32768.0
        assert float(to_int16_saturating(3.7)) == 3.0
        assert float(to_int16_saturating(np.nan)) == 0.0

    def test_precision_cast_dispatch(self):
        x = np.array([1.5], dtype=np.float32)
        assert Precision.cast(x, Precision.FP32)[0] == 1.5
        assert Precision.cast(x, Precision.BF16)[0] == 1.5
        with pytest.raises(ValueError):
            Precision.cast(x, "fp8")

    def test_modes_listed(self):
        assert set(Precision.modes()) == {"fp32", "bf16", "fp16", "int16"}


class TestQuantizedMatmul:
    def test_matches_fp32_for_representable(self, rng):
        a = np.round(rng.normal(size=(4, 5)) * 4) / 4  # bf16-exact values
        b = np.round(rng.normal(size=(5, 3)) * 4) / 4
        a, b = a.astype(np.float32), b.astype(np.float32)
        out = quantized_matmul(a, b)
        ref = a @ b
        assert np.allclose(out, ref, rtol=1e-2, atol=1e-3)

    def test_quantization_changes_result(self, rng):
        a = rng.normal(size=(8, 8)).astype(np.float32) * (1 + 1e-4)
        b = rng.normal(size=(8, 8)).astype(np.float32)
        exact = a @ b
        quant = quantized_matmul(a, b)
        # bf16 inputs lose mantissa bits; results differ slightly.
        assert np.allclose(exact, quant, rtol=0.05, atol=0.05)


class TestSaturation:
    def test_saturate_to_inf(self):
        big = np.array([1e39, -1e39, 1.0], dtype=np.float64)
        out = saturate_to_inf(big)
        assert np.isposinf(out[0])
        assert np.isneginf(out[1])
        assert out[2] == 1.0
        assert out.dtype == np.float32

    def test_constants(self):
        assert FLOAT32_MAX == pytest.approx(3.4028235e38)
        assert BFLOAT16_MAX > FLOAT32_MAX * 0.99
