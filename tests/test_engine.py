"""Tests for the parallel campaign-execution engine (repro.engine)."""

import os
import time
from pathlib import Path

import pytest

from repro.core.faults import Campaign
from repro.engine import (
    CampaignEngine,
    EngineConfig,
    ResultStore,
    WorkUnit,
    read_records,
    store_to_campaign,
)
from repro.workloads import build_workload


# ----------------------------------------------------------------------
# Toy runner: behaviour is driven entirely by the unit payload, so the
# scheduler's robustness policy can be exercised without training.
# ----------------------------------------------------------------------
def _toy_factory():
    def run(payload):
        if payload.get("marker"):
            with open(payload["marker"], "a") as fh:
                fh.write(payload["key"] + "\n")
        if payload.get("sleep"):
            time.sleep(payload["sleep"])
        if payload.get("crash"):
            os._exit(3)
        if payload.get("fail"):
            raise RuntimeError("deliberate failure")
        if payload.get("flaky"):
            flag = Path(payload["flaky"])
            if not flag.exists():
                flag.write_text("attempted")
                raise RuntimeError("flaky first attempt")
        return {"value": payload["x"] * 2, "outcome": "ok"}

    return run


def _units(payloads):
    return [WorkUnit(key=f"key{i}", payload={"key": f"key{i}", "x": i, **p})
            for i, p in enumerate(payloads)]


class TestToyEngine:
    def test_serial_matches_parallel(self):
        units = _units([{} for _ in range(6)])
        serial = CampaignEngine(_toy_factory, EngineConfig(parallel=1)).run(units)
        parallel = CampaignEngine(_toy_factory, EngineConfig(parallel=2)).run(units)
        assert serial.results == parallel.results
        assert parallel.executed == 6
        assert parallel.snapshot.done == 6
        assert parallel.snapshot.breakdown == {"ok": 6}

    def test_retry_recovers_flaky_unit(self, tmp_path):
        units = _units([{}, {"flaky": str(tmp_path / "flag")}])
        report = CampaignEngine(
            _toy_factory, EngineConfig(parallel=1, retry_backoff=0.01),
        ).run(units)
        assert report.retries == 1
        assert report.quarantined == {}
        assert sorted(report.results) == ["key0", "key1"]

    def test_quarantine_after_retries(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl", kind="toy")
        units = _units([{}, {"fail": True}, {}])
        report = CampaignEngine(
            _toy_factory,
            EngineConfig(parallel=1, max_retries=1, retry_backoff=0.01),
            store=store,
        ).run(units)
        store.close()
        assert sorted(report.results) == ["key0", "key2"]
        assert list(report.quarantined) == ["key1"]
        assert "deliberate failure" in report.quarantined["key1"]
        assert report.retries == 1  # one retry, then quarantine
        # The quarantine is persisted, so a resume skips it entirely.
        resumed_store = ResultStore(tmp_path / "s.jsonl", resume=True)
        resumed = CampaignEngine(
            _toy_factory, EngineConfig(parallel=1), store=resumed_store,
        ).run(units)
        resumed_store.close()
        assert resumed.executed == 0
        assert resumed.skipped == 3
        assert list(resumed.quarantined) == ["key1"]

    def test_parallel_timeout_quarantines_hung_unit(self):
        units = _units([{}, {"sleep": 60}, {}])
        report = CampaignEngine(
            _toy_factory,
            EngineConfig(parallel=2, timeout=1.0, max_retries=0,
                         poll_interval=0.02),
        ).run(units)
        assert sorted(report.results) == ["key0", "key2"]
        assert "timeout" in report.quarantined["key1"]

    def test_parallel_worker_crash_quarantined(self):
        units = _units([{}, {"crash": True}, {}])
        report = CampaignEngine(
            _toy_factory,
            EngineConfig(parallel=2, max_retries=0, poll_interval=0.02),
        ).run(units)
        assert sorted(report.results) == ["key0", "key2"]
        assert "crashed" in report.quarantined["key1"]
        restarts = sum(w.restarts for w in report.snapshot.workers.values())
        assert restarts >= 1

    def test_interrupt_then_resume_executes_each_unit_once(self, tmp_path):
        marker = tmp_path / "executed.log"
        units = _units([{"marker": str(marker)} for _ in range(6)])

        def interrupt_after_three(snapshot):
            if snapshot.done >= 3:
                raise KeyboardInterrupt

        store = ResultStore(tmp_path / "s.jsonl", kind="toy")
        with pytest.raises(KeyboardInterrupt):
            CampaignEngine(_toy_factory, EngineConfig(parallel=1),
                           store=store,
                           on_progress=interrupt_after_three).run(units)
        store.close()
        assert len(ResultStore(tmp_path / "s.jsonl", resume=True).completed) == 3

        store = ResultStore(tmp_path / "s.jsonl", resume=True)
        report = CampaignEngine(_toy_factory, EngineConfig(parallel=1),
                                store=store).run(units)
        store.close()
        assert report.executed == 3
        assert report.skipped == 3
        assert sorted(report.results) == [u.key for u in units]
        executed = marker.read_text().split()
        assert sorted(executed) == sorted(set(executed)) == \
            [u.key for u in units]


# ----------------------------------------------------------------------
# Integration with real campaigns
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine_campaign():
    spec = build_workload("resnet", size="tiny", seed=0)
    campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=6,
                        horizon=10, inject_window=4, test_every=5)
    campaign.prepare()
    return campaign


@pytest.fixture(scope="module")
def serial_result(engine_campaign):
    return engine_campaign.run(5, seed=11)


class TestCampaignThroughEngine:
    def test_parallel_breakdown_matches_serial(self, engine_campaign,
                                               serial_result, tmp_path):
        parallel = engine_campaign.run(
            5, seed=11, parallel=2, store=tmp_path / "s.jsonl")
        assert parallel.breakdown() == serial_result.breakdown()
        assert parallel.engine_report.executed == 5
        keys = [r["key"] for r in read_records(tmp_path / "s.jsonl")[1:]]
        assert len(keys) == len(set(keys)) == 5

    def test_kill_and_resume_no_duplicates(self, engine_campaign,
                                           serial_result, tmp_path):
        """Kill the run mid-campaign, restart with --resume semantics:
        no experiment key is executed twice and the aggregate breakdown
        matches a straight serial run with the same seeds."""
        path = tmp_path / "s.jsonl"

        def killer(snapshot):
            if snapshot.done >= 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            engine_campaign.run(5, seed=11, store=path, on_progress=killer)
        partial = [r["key"] for r in read_records(path)[1:]]
        assert len(partial) == 2

        resumed = engine_campaign.run(5, seed=11, store=path, resume=True)
        assert resumed.engine_report.skipped == 2
        assert resumed.engine_report.executed == 3
        keys = [r["key"] for r in read_records(path)[1:]]
        assert len(keys) == len(set(keys)) == 5
        assert resumed.breakdown() == serial_result.breakdown()

    def test_store_merge_matches_serial(self, engine_campaign,
                                        serial_result, tmp_path):
        """Two half-campaign shards merge into the full campaign."""
        from repro.engine import merge_stores

        faults = engine_campaign.sample_faults(5, seed=11)
        units = engine_campaign._work_units(faults)
        for name, chunk in (("a", units[:2]), ("b", units[2:])):
            store = ResultStore(tmp_path / f"{name}.jsonl", kind="campaign",
                                meta={"workload": "resnet"})
            CampaignEngine(engine_campaign._engine_runner,
                           EngineConfig(parallel=1), store=store).run(chunk)
            store.close()
        merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
                     tmp_path / "m.jsonl").close()
        merged = store_to_campaign(tmp_path / "m.jsonl")
        assert merged.breakdown() == serial_result.breakdown()

    def test_sweep_parallel_matches_serial(self, engine_campaign):
        from repro.core.faults import SweepAxis, run_sweep

        axes = [SweepAxis("group", [1, 2]), SweepAxis("iteration", [7, 9])]
        serial = run_sweep(engine_campaign, axes)
        parallel = run_sweep(engine_campaign, axes, parallel=2)
        assert {k: v.outcome for k, v in serial.cells.items()} == \
            {k: v.outcome for k, v in parallel.cells.items()}

    def test_keep_records_rejects_engine_options(self):
        spec = build_workload("resnet", size="tiny", seed=0)
        campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=4,
                            horizon=6, keep_records=True)
        with pytest.raises(ValueError, match="keep_records"):
            campaign.run(1, parallel=2)


class TestStallTelemetry:
    def _snapshot(self, busy_elapsed, stall_timeout):
        from repro.engine.telemetry import ProgressSnapshot, WorkerHealth

        workers = {
            0: WorkerHealth(completed=2),
            1: WorkerHealth(completed=1, busy_key="key7",
                            busy_elapsed_s=busy_elapsed),
        }
        return ProgressSnapshot(total=6, done=3, skipped=0, quarantined=0,
                                retries=0, elapsed=10.0, throughput=0.3,
                                eta=10.0, breakdown={"ok": 3},
                                workers=workers, stall_timeout=stall_timeout)

    def test_stalled_workers_flagged_and_rendered(self):
        snapshot = self._snapshot(busy_elapsed=45.0, stall_timeout=30.0)
        assert snapshot.stalled_workers() == [1]
        assert "STALLED: w1" in snapshot.render()

    def test_fast_workers_not_flagged(self):
        snapshot = self._snapshot(busy_elapsed=5.0, stall_timeout=30.0)
        assert snapshot.stalled_workers() == []
        assert "STALLED" not in snapshot.render()

    def test_no_timeout_disables_stall_flagging(self):
        snapshot = self._snapshot(busy_elapsed=1e9, stall_timeout=None)
        assert snapshot.stalled_workers() == []

    def test_tracker_snapshot_carries_busy_elapsed(self):
        from repro.engine.telemetry import ProgressTracker

        tracker = ProgressTracker(total=2, stall_timeout=0.01)
        tracker.task_started(0, "key0")
        time.sleep(0.03)
        snapshot = tracker.snapshot()
        assert snapshot.workers[0].busy_elapsed_s > 0.01
        assert snapshot.stalled_workers() == [0]
