"""Tests for the global compute-precision configuration (repro.nn.config)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import config
from repro.tensor.dtypes import Precision


class TestPrecisionState:
    def test_default_is_fp32(self):
        assert config.get_compute_precision() == Precision.FP32

    def test_context_manager_restores(self):
        with config.compute_precision(Precision.BF16):
            assert config.get_compute_precision() == Precision.BF16
        assert config.get_compute_precision() == Precision.FP32

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with config.compute_precision(Precision.BF16):
                raise RuntimeError("boom")
        assert config.get_compute_precision() == Precision.FP32

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            config.set_compute_precision("fp8")


class TestMixedPrecisionCompute:
    def test_matmul_quantizes_under_bf16(self, rng):
        a = rng.normal(size=(16, 16)).astype(np.float32) * (1 + 1e-4)
        b = rng.normal(size=(16, 16)).astype(np.float32)
        exact = config.matmul(a, b)
        with config.compute_precision(Precision.BF16):
            quantized = config.matmul(a, b)
        assert not np.array_equal(exact, quantized)
        assert np.allclose(exact, quantized, rtol=0.05, atol=0.05)

    def test_layers_follow_mode(self, rng):
        layer = nn.Dense(8, 8, rng)
        x = rng.normal(size=(4, 8)).astype(np.float32) * (1 + 1e-4)
        exact = layer.forward(x)
        with config.compute_precision(Precision.BF16):
            quantized = layer.forward(x)
        assert not np.array_equal(exact, quantized)

    def test_training_converges_under_bf16(self):
        """The accelerator-faithful mode (bfloat16 MACs, FP32 accumulate)
        still trains the workload — Sec. 3.1's precision setting."""
        from repro.distributed import SyncDataParallelTrainer
        from repro.workloads import build_workload

        spec = build_workload("resnet", size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0, test_every=0)
        with config.compute_precision(Precision.BF16):
            record = trainer.train(30)
        assert record.final_train_accuracy() > record.train_acc[0] + 0.2
        assert record.nonfinite_at is None


class TestRTLPrecisionFault:
    def test_cfg_precision_fault_distorts_outputs(self, rng):
        """The micro-RTL config-register fault: int16 MACs instead of
        bfloat16 (the Sec. 4.2.1 immediate-INFs mechanism)."""
        from repro.accelerator.rtl import MACArraySimulator, RTLFault

        sim = MACArraySimulator()
        x = rng.normal(size=(4, 64)).astype(np.float32)
        w = rng.normal(0, 0.1, size=(64, 16)).astype(np.float32)
        golden = sim.run(x, w)
        fault = RTLFault("cfg_precision", cycle=0, duration=10**9)
        faulty = sim.run(x, w, fault)
        diff = sim.diff_positions(golden, faulty)
        assert diff.size > 0
        # int16-quantized operands scale outputs by ~256 on average.
        ratio = np.abs(faulty).mean() / max(np.abs(golden).mean(), 1e-9)
        assert ratio > 10
