"""Tests for the convergence recorder."""

import pytest

from repro.training.metrics import ConvergenceRecord


@pytest.fixture
def record():
    rec = ConvergenceRecord()
    for i in range(10):
        rec.record_train(i, 1.0 - i * 0.05, i * 0.05, history_mag=0.1, mvar_mag=1.0)
    rec.record_test(4, 0.3)
    rec.record_test(9, 0.5)
    return rec


class TestRecording:
    def test_lengths(self, record):
        assert record.num_iterations == 10
        assert len(record.test_acc) == 2
        assert len(record.history_magnitude) == 10

    def test_final_accuracies(self, record):
        assert record.final_train_accuracy(window=1) == pytest.approx(0.45)
        assert record.final_test_accuracy(window=1) == pytest.approx(0.5)
        assert ConvergenceRecord().final_train_accuracy() == 0.0
        assert ConvergenceRecord().final_test_accuracy() == 0.0

    def test_arrays(self, record):
        assert record.train_accuracy_array().shape == (10,)
        assert record.loss_array()[0] == pytest.approx(1.0)
        assert record.test_accuracy_array().tolist() == [0.3, 0.5]


class TestNonfinite:
    def test_first_marking_wins(self, record):
        record.mark_nonfinite(3)
        record.mark_nonfinite(7)
        assert record.nonfinite_at == 3


class TestTruncate:
    def test_drops_tail(self, record):
        record.truncate_to(5)
        assert record.num_iterations == 5
        assert record.iterations[-1] == 4
        assert len(record.history_magnitude) == 5
        assert record.test_iterations == [4]

    def test_clears_nonfinite_if_rolled_back(self, record):
        record.mark_nonfinite(7)
        record.truncate_to(5)
        assert record.nonfinite_at is None

    def test_keeps_earlier_nonfinite(self, record):
        record.mark_nonfinite(2)
        record.truncate_to(5)
        assert record.nonfinite_at == 2


class TestSerialization:
    def test_to_dict(self, record):
        record.detections.append(4)
        data = record.to_dict()
        assert data["detections"] == [4]
        assert len(data["train_acc"]) == 10
        import json

        json.dumps(data)  # must be JSON-serializable
