"""Tests for :mod:`repro.replay`: record extraction, round-trip replays,
corrupt-trace handling, and the pinned-corpus CI gate."""

import json
from pathlib import Path

import pytest

from repro.core.faults.campaign import Campaign
from repro.engine import experiment_key, read_records
from repro.engine.worker import UnitCapture
from repro.observe import EXPERIMENT_FINISHED, EXPERIMENT_STARTED, Tracer
from repro.observe.tracer import read_trace
from repro.replay import (
    CampaignCache,
    ReplayError,
    canonical_event,
    entry_to_record,
    events_digest,
    load_corpus,
    normalize_events,
    replay,
    replay_keys,
    replay_record,
    run_corpus,
    save_corpus,
    verify_key,
)
from repro.workloads import build_workload

CORPUS_PATH = Path(__file__).parent / "data" / "replay_corpus.json"

#: A structurally valid fault descriptor (content does not matter for
#: record-extraction tests; no campaign is ever built from it).
FAULT = {
    "ff": {"category": "datapath", "group": "mult", "bit": 30,
           "has_feedback": False},
    "site": {"module_name": "blocks.0.conv1", "kind": "forward"},
    "iteration": 3, "device": 0, "seed": 42,
}

#: Minimal config for synthetic traces; extraction never runs it.
CONFIG = {"backend": "inprocess"}


def _campaign(backend="inprocess", experiment_batch=1, **kwargs):
    spec = build_workload("resnet", size="tiny", seed=0)
    return Campaign(spec, num_devices=2, warmup_iterations=2, horizon=6,
                    test_every=3, backend=backend,
                    experiment_batch=experiment_batch, **kwargs)


def _traced_run(tmp_path, backend="inprocess", experiment_batch=1,
                num_experiments=2):
    """Run a small traced campaign; returns (store_path, trace_path)."""
    campaign = _campaign(backend, experiment_batch)
    store = tmp_path / "camp.jsonl"
    result = campaign.run(num_experiments, seed=7, store=store, trace=True)
    trace = result.engine_report.trace_path
    assert trace is not None and trace.exists()
    return store, trace


def _synthetic_trace(path, *, config=CONFIG, key=None, unit="full",
                     attempts=1, finish=True):
    """A hand-built merged-style trace exercising one experiment story.

    ``unit`` selects the started marker's payload: "full" (replayable),
    "none" (pre-replay format), or "absent" (no started marker at all).
    """
    key = key or experiment_key(0, FAULT)
    meta = {"store_meta": {"config": config}} if config is not None else {}
    with Tracer(stream=path, meta=meta) as tracer:
        capture = UnitCapture(tracer, 0)
        for _ in range(attempts):
            if unit == "absent":
                tracer.emit(EXPERIMENT_FINISHED, key=key, attempt=0,
                            status="done", outcome="masked_improved")
                continue
            payload = {"index": 0, "fault": FAULT} if unit == "full" else None
            capture.start(key, payload)
            tracer.emit("iteration_stats", iteration=0, loss=1.0)
            if finish:
                capture.done({"outcome": "masked_improved",
                              "arena_sha256": "ab" * 32})
            else:
                tracer.clear_context()  # attempt stays open
    return key


# ----------------------------------------------------------------------
# Record completeness: traces carry everything a replay needs
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_campaign(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("replay")
    return _traced_run(tmp_path)


class TestRecordCompleteness:
    def test_started_marker_carries_work_unit_payload(self, traced_campaign):
        _, trace_path = traced_campaign
        started = [e for e in read_trace(trace_path).events
                   if e.type == EXPERIMENT_STARTED]
        assert started
        for event in started:
            unit = event.data["unit"]
            assert isinstance(unit["index"], int)
            fault = unit["fault"]
            assert set(fault) == {"ff", "site", "iteration", "device", "seed"}
            assert experiment_key(unit["index"], fault) == event.data["key"]

    def test_finished_marker_carries_outcome_and_arena(self, traced_campaign):
        _, trace_path = traced_campaign
        finished = [e for e in read_trace(trace_path).events
                    if e.type == EXPERIMENT_FINISHED
                    and e.data.get("status") == "done"]
        assert finished
        for event in finished:
            assert isinstance(event.data["outcome"], str)
            arena = event.data["arena_sha256"]
            assert len(arena) == 64 and int(arena, 16) >= 0

    def test_config_reaches_store_and_trace_headers(self, traced_campaign):
        store_path, trace_path = traced_campaign
        store_config = read_records(store_path)[0]["meta"]["config"]
        trace_config = read_trace(trace_path).meta["store_meta"]["config"]
        assert store_config == trace_config
        for field in ("workload", "size", "workload_seed", "num_devices",
                      "seed", "warmup_iterations", "horizon", "test_every",
                      "thresholds", "site_kinds", "detect", "backend",
                      "experiment_batch"):
            assert field in store_config, field

    def test_replay_record_round_trips_the_story(self, traced_campaign):
        _, trace_path = traced_campaign
        keys = replay_keys(trace_path)
        assert len(keys) == 2
        for key in keys:
            record = replay_record(trace_path, key)
            verify_key(record)  # content hash matches index x fault
            assert record.backend == "inprocess"
            assert record.outcome is not None
            assert record.arena_sha256 is not None
            assert record.events
            assert record.events_sha256 == events_digest(record.events)


# ----------------------------------------------------------------------
# Round trip: record on backend B, replay on backend B, bit-for-bit
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("backend,batch,num", [
        pytest.param("inprocess", 1, 2, id="inprocess"),
        pytest.param("multiprocess", 1, 2, id="multiprocess",
                     marks=[pytest.mark.slow, pytest.mark.backend]),
        pytest.param("batched", 2, 4, id="batched",
                     marks=[pytest.mark.slow, pytest.mark.backend]),
    ])
    def test_replay_reproduces_recording(self, tmp_path, backend, batch, num):
        _, trace_path = _traced_run(tmp_path, backend, batch, num)
        keys = replay_keys(trace_path)
        assert len(keys) == num
        cache = CampaignCache()
        for key in keys[:2]:
            record = replay_record(trace_path, key)
            assert record.backend == backend
            report = replay(record, verify_trace=True, cache=cache)
            assert report.ok, report.mismatches
            assert report.outcome_match
            assert report.arena_match is True
            if batch == 1:
                # Solo runs store the full attributable event stream.
                assert report.events_match is True
            else:
                # Block runs record marker-only stories; there is no
                # per-experiment stream to verify against.
                assert record.events == []
                assert report.events_match is None

    @pytest.mark.slow
    @pytest.mark.backend
    def test_cross_backend_replay_matches(self, tmp_path):
        """Outcomes and state bytes are backend-invariant, so a record
        made on one backend replays clean on another."""
        _, trace_path = _traced_run(tmp_path, "inprocess")
        record = replay_record(trace_path, replay_keys(trace_path)[0])
        report = replay(record, backend="batched", verify_trace=True)
        assert report.ok, report.mismatches
        assert report.backend == "batched"
        assert report.events_match is True

    def test_tampered_fault_fails_key_verification(self, tmp_path):
        _, trace_path = _traced_run(tmp_path)
        record = replay_record(trace_path, replay_keys(trace_path)[0])
        record.fault = dict(record.fault, iteration=record.fault["iteration"] + 1)
        with pytest.raises(ReplayError, match="does not match"):
            replay(record)


# ----------------------------------------------------------------------
# Corrupt traces: every ambiguity is a clean ReplayError
# ----------------------------------------------------------------------
class TestCorruptTraces:
    def test_unknown_key_lists_cleanly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _synthetic_trace(path)
        with pytest.raises(ReplayError, match="no events for experiment"):
            replay_record(path, "no-such-key")

    def test_duplicated_complete_attempts_are_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        key = _synthetic_trace(path, attempts=2)
        with pytest.raises(ReplayError, match="2 completed attempts"):
            replay_record(path, key)

    def test_never_finished_attempt_is_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        key = _synthetic_trace(path, finish=False)
        with pytest.raises(ReplayError, match="no completed attempt"):
            replay_record(path, key)

    def test_missing_started_marker_is_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        key = _synthetic_trace(path, unit="absent")
        with pytest.raises(ReplayError, match="no experiment_started"):
            replay_record(path, key)

    def test_pre_replay_trace_without_unit_payload_is_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        key = _synthetic_trace(path, unit="none")
        with pytest.raises(ReplayError, match="work-unit payload"):
            replay_record(path, key)

    def test_trace_without_campaign_config_is_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        key = _synthetic_trace(path, config=None)
        with pytest.raises(ReplayError, match="no campaign config"):
            replay_record(path, key)

    def test_truncated_header_is_a_replay_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        key = _synthetic_trace(path)
        cut = tmp_path / "cut.jsonl"
        cut.write_bytes(path.read_bytes()[:10])  # header cut mid-write
        with pytest.raises(ReplayError, match="unreadable trace"):
            replay_record(cut, key)
        with pytest.raises(ReplayError, match="unreadable trace"):
            replay_keys(cut)

    def test_truncated_tail_loses_completion_cleanly(self, tmp_path):
        """A shard cut before the finished marker replays as a clean
        'no completed attempt' error, not a wrong replay."""
        path = tmp_path / "t.jsonl"
        key = _synthetic_trace(path)
        lines = path.read_bytes().splitlines(keepends=True)
        cut = tmp_path / "cut.jsonl"
        cut.write_bytes(b"".join(lines[:-1]) + lines[-1][:20])
        with pytest.raises(ReplayError, match="no completed attempt"):
            replay_record(cut, key)


# ----------------------------------------------------------------------
# Event canonicalization
# ----------------------------------------------------------------------
class TestCanonicalEvents:
    def test_context_and_scheduling_markers_are_stripped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        key = _synthetic_trace(path)
        events = [e for e in read_trace(path).events
                  if e.data.get("key") == key]
        lines = normalize_events(events)
        assert len(lines) == 1  # markers dropped, iteration_stats kept
        payload = json.loads(lines[0])
        assert payload["type"] == "iteration_stats"
        assert not set(payload["data"]) & {"key", "worker", "attempt"}

    def test_canonical_event_is_seq_and_ts_free(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _synthetic_trace(path)
        event = read_trace(path).events[1]
        line = canonical_event(event)
        assert set(json.loads(line)) == {"type", "iteration", "data"}
        assert '"seq"' not in line and '"t":' not in line

    def test_events_digest_is_order_sensitive(self):
        assert events_digest(["a", "b"]) != events_digest(["b", "a"])
        assert events_digest([]) == events_digest([])


# ----------------------------------------------------------------------
# The pinned corpus: coverage, determinism, and the CI gate
# ----------------------------------------------------------------------
class TestCorpus:
    def test_committed_corpus_covers_the_matrix(self):
        corpus = load_corpus(CORPUS_PATH)
        entries = corpus["entries"]
        assert len(entries) >= 12
        kinds = {e["fault"]["site"]["kind"] for e in entries}
        assert kinds == {"forward", "weight_grad", "input_grad", "comm"}
        backends = {e["backend"] for e in entries}
        assert backends == {"inprocess", "multiprocess", "batched"}
        outcomes = {e["outcome"] for e in entries}
        assert len(outcomes) >= 3  # masked plus at least two failure classes
        for entry in entries:
            assert entry["key"] == experiment_key(entry["index"],
                                                  entry["fault"])
            assert entry["arena_sha256"] and entry["events_sha256"]

    def test_committed_corpus_serialization_is_stable(self, tmp_path):
        corpus = load_corpus(CORPUS_PATH)
        out = tmp_path / "copy.json"
        save_corpus(corpus, out)
        assert out.read_bytes() == CORPUS_PATH.read_bytes()

    def test_load_corpus_validates_documents(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{not json")
        with pytest.raises(ReplayError, match="corrupt corpus"):
            load_corpus(path)
        path.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(ReplayError, match="not a replay corpus"):
            load_corpus(path)
        path.write_text(json.dumps({"kind": "replay_corpus", "schema": 99,
                                    "entries": [{}]}))
        with pytest.raises(ReplayError, match="schema version"):
            load_corpus(path)
        path.write_text(json.dumps({"kind": "replay_corpus", "schema": 1,
                                    "entries": []}))
        with pytest.raises(ReplayError, match="no entries"):
            load_corpus(path)
        path.write_text(json.dumps({"kind": "replay_corpus", "schema": 1,
                                    "entries": [{"key": "k"}]}))
        with pytest.raises(ReplayError, match="missing fields"):
            load_corpus(path)
        with pytest.raises(ReplayError, match="cannot read"):
            load_corpus(tmp_path / "missing.json")

    def test_gate_fails_on_induced_outcome_flip(self):
        """The acceptance demo: flip one pinned outcome and the corpus
        gate must fail on exactly that entry."""
        corpus = load_corpus(CORPUS_PATH)
        entry = dict(next(e for e in corpus["entries"]
                          if e["backend"] == "inprocess"))
        entry["outcome"] = ("masked_improved"
                           if entry["outcome"] != "masked_improved"
                           else "immediate_inf_nan")
        tampered = {"kind": "replay_corpus", "schema": 1, "entries": [entry]}
        reports = run_corpus(tampered, verify_trace=True)
        assert len(reports) == 1
        assert not reports[0].ok
        assert not reports[0].outcome_match
        assert any("outcome flip" in m for m in reports[0].mismatches)
        # ... while arena and event stream still verify: only the pin
        # was wrong, not the replay.
        assert reports[0].arena_match is True
        assert reports[0].events_match is True

    def test_bless_re_pins_entries_in_place(self):
        corpus = load_corpus(CORPUS_PATH)
        entry = dict(next(e for e in corpus["entries"]
                          if e["backend"] == "inprocess"))
        original = dict(entry)
        entry["outcome"] = "not_a_real_outcome"
        entry["arena_sha256"] = None
        entry["events_sha256"] = None
        tampered = {"kind": "replay_corpus", "schema": 1, "entries": [entry]}
        run_corpus(tampered, bless=True)
        assert entry["outcome"] == original["outcome"]
        assert entry["arena_sha256"] == original["arena_sha256"]
        assert entry["events_sha256"] == original["events_sha256"]

    def test_entry_to_record_pins_digests_not_streams(self):
        corpus = load_corpus(CORPUS_PATH)
        record = entry_to_record(corpus["entries"][0])
        assert record.events == []
        assert record.events_sha256 is not None
        verify_key(record)

    @pytest.mark.slow
    def test_full_corpus_replays_clean(self):
        """The CI replay gate as a test: every pinned entry reproduces
        its outcome, arena digest, and event digest on its backend."""
        corpus = load_corpus(CORPUS_PATH)
        reports = run_corpus(corpus, verify_trace=True)
        failures = [r for r in reports if not r.ok]
        assert not failures, [r.mismatches for r in failures]
