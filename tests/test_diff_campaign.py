"""Tests for campaign diffing (repro.replay.diff) and the deterministic
JSON surfaces that feed it (report --json, monitor --json)."""

import json

import pytest

from repro.core.analysis import stable_floats
from repro.core.faults.campaign import Campaign
from repro.engine import ResultStore, collect, snapshot_dict
from repro.observe import DETECTOR_FIRED, FAULT_INJECTED, Tracer
from repro.observe.merge import campaign_trace_path
from repro.replay import QUARANTINED, diff_campaigns, render_diff
from repro.workloads import build_workload


def _make_store(path, rows, quarantined=()):
    """rows: list of (key, outcome)."""
    with ResultStore(path, kind="campaign",
                     meta={"num_experiments": len(rows)}) as store:
        for key, outcome in rows:
            store.append(key, {"outcome": outcome})
        for key, error in quarantined:
            store.quarantine(key, error)
    return path


def _make_trace(store_path, detections):
    """detections: list of (key, fault_iteration, detected_at | None)."""
    trace = campaign_trace_path(store_path)
    with Tracer(stream=trace) as tracer:
        for key, injected_at, detected_at in detections:
            tracer.emit(FAULT_INJECTED, iteration=injected_at, key=key)
            if detected_at is not None:
                tracer.emit(DETECTOR_FIRED, iteration=detected_at, key=key,
                            condition="history_magnitude")
    return trace


class TestDiffCampaigns:
    def test_identical_stores_have_no_flips(self, tmp_path):
        rows = [("k1", "masked_improved"), ("k2", "immediate_inf_nan")]
        a = _make_store(tmp_path / "a.jsonl", rows)
        b = _make_store(tmp_path / "b.jsonl", rows)
        diff = diff_campaigns(a, b)
        assert diff["flip_count"] == 0 and diff["flips"] == []
        assert diff["transitions"] == {
            "immediate_inf_nan -> immediate_inf_nan": 1,
            "masked_improved -> masked_improved": 1,
        }
        assert diff["only_in_a"] == [] and diff["only_in_b"] == []
        assert diff["detection"] is None  # no traces next to the stores

    def test_transition_matrix_and_flips(self, tmp_path):
        a = _make_store(tmp_path / "a.jsonl", [
            ("k1", "masked_improved"), ("k2", "masked_improved"),
            ("k3", "immediate_inf_nan"), ("k4", "masked_improved")])
        b = _make_store(tmp_path / "b.jsonl", [
            ("k1", "masked_improved"), ("k2", "low_test_accuracy"),
            ("k3", "latent_inf_nan"), ("k4", "masked_improved")])
        diff = diff_campaigns(a, b)
        assert diff["flip_count"] == 2
        assert diff["transitions"]["masked_improved -> masked_improved"] == 2
        assert diff["transitions"]["masked_improved -> low_test_accuracy"] == 1
        assert diff["transitions"]["immediate_inf_nan -> latent_inf_nan"] == 1
        assert [f["key"] for f in diff["flips"]] == ["k2", "k3"]
        assert diff["outcomes_a"] == {"immediate_inf_nan": 1,
                                      "masked_improved": 3}

    def test_quarantine_is_a_pseudo_outcome(self, tmp_path):
        a = _make_store(tmp_path / "a.jsonl", [("k1", "masked_improved")])
        b = _make_store(tmp_path / "b.jsonl", [],
                        quarantined=[("k1", "Timeout: stuck")])
        diff = diff_campaigns(a, b)
        assert diff["transitions"] == {f"masked_improved -> {QUARANTINED}": 1}
        assert diff["flips"] == [{"key": "k1", "a": "masked_improved",
                                  "b": QUARANTINED}]

    def test_new_and_missing_keys(self, tmp_path):
        a = _make_store(tmp_path / "a.jsonl", [("k1", "x"), ("k2", "x")])
        b = _make_store(tmp_path / "b.jsonl", [("k2", "x"), ("k3", "x")])
        diff = diff_campaigns(a, b)
        assert diff["experiments"] == {"a": 2, "b": 2, "common": 1}
        assert diff["only_in_a"] == ["k1"]
        assert diff["only_in_b"] == ["k3"]

    def test_detection_latency_deltas(self, tmp_path):
        rows = [("k1", "x"), ("k2", "x")]
        a = _make_store(tmp_path / "a.jsonl", rows)
        b = _make_store(tmp_path / "b.jsonl", rows)
        _make_trace(a, [("k1", 3, 5), ("k2", 3, None)])
        _make_trace(b, [("k1", 3, 7), ("k2", 3, 4)])
        diff = diff_campaigns(a, b)
        detection = diff["detection"]
        assert detection["caught"] == {"a": 1, "b": 2}
        assert detection["mean_latency"]["a"] == 2.0
        assert detection["mean_latency"]["b"] == 2.5
        assert detection["deltas"] == [
            {"key": "k1", "a": 2, "b": 4},
            {"key": "k2", "a": None, "b": 1},
        ]

    def test_render_diff_flags_flips(self, tmp_path):
        a = _make_store(tmp_path / "a.jsonl", [("k1", "masked_improved")])
        b = _make_store(tmp_path / "b.jsonl", [("k1", "latent_inf_nan")])
        text = render_diff(diff_campaigns(a, b))
        assert "flipped experiments (1):" in text
        assert "masked_improved -> latent_inf_nan" in text
        clean = render_diff(diff_campaigns(a, a))
        assert "no outcome flips" in clean

    def test_cli_exit_codes_and_json_determinism(self, tmp_path, capsys):
        from repro.cli import main

        a = _make_store(tmp_path / "a.jsonl", [("k1", "x")])
        b = _make_store(tmp_path / "b.jsonl", [("k1", "y")])
        assert main(["diff-campaign", str(a), str(a)]) == 0
        capsys.readouterr()
        assert main(["diff-campaign", str(a), str(b)]) == 1
        capsys.readouterr()
        assert main(["diff-campaign", str(a), str(b), "--json"]) == 1
        first = capsys.readouterr().out
        assert main(["diff-campaign", str(a), str(b), "--json"]) == 1
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["flip_count"] == 1


# ----------------------------------------------------------------------
# Deterministic JSON surfaces
# ----------------------------------------------------------------------
class TestStableFloats:
    def test_normalizes_repr_noise(self):
        assert stable_floats(0.1 + 0.2) == stable_floats(0.3)
        assert stable_floats(1.0) == 1.0

    def test_recurses_containers(self):
        value = {"a": [0.1 + 0.2, {"b": (0.3,)}], "c": "s", "d": 3}
        out = stable_floats(value)
        assert out["a"][0] == 0.3
        assert out["a"][1]["b"] == [0.3]
        assert out["c"] == "s" and out["d"] == 3

    def test_nonfinite_passes_through(self):
        inf, nan = stable_floats([float("inf"), float("nan")])
        assert inf == float("inf")
        assert nan != nan


@pytest.fixture(scope="module")
def campaign_store(tmp_path_factory):
    """One small real campaign with a store + merged trace."""
    tmp_path = tmp_path_factory.mktemp("diffcamp")
    spec = build_workload("resnet", size="tiny", seed=0)
    campaign = Campaign(spec, num_devices=2, warmup_iterations=2, horizon=6,
                        test_every=3)
    store = tmp_path / "camp.jsonl"
    campaign.run(2, seed=7, store=store, trace=True)
    return store


class TestDeterministicOutputs:
    def test_report_json_is_byte_stable(self, campaign_store, capsys):
        from repro.cli import main

        assert main(["report", str(campaign_store), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["report", str(campaign_store), "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert list(payload) == sorted(payload)  # sorted keys

    def test_monitor_snapshot_ignores_wall_clock(self, campaign_store):
        early = collect(campaign_store, now=0.0)
        late = collect(campaign_store, now=1e12)
        assert snapshot_dict(early) == snapshot_dict(late)
        dumped = json.dumps(snapshot_dict(early), sort_keys=True)
        assert json.loads(dumped) == snapshot_dict(early)

    def test_monitor_json_cli_is_byte_stable(self, campaign_store, capsys):
        from repro.cli import main

        assert main(["monitor", str(campaign_store), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["monitor", str(campaign_store), "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        snapshot = json.loads(first)
        assert snapshot["completed"] == 2
        for volatile in ("throughput", "eta", "last_result_age"):
            assert volatile not in snapshot

    def test_same_campaign_diffs_clean_against_itself(self, campaign_store):
        diff = diff_campaigns(campaign_store, campaign_store)
        assert diff["flip_count"] == 0
        assert diff["detection"] is not None  # trace sits next to the store
        assert diff["detection"]["deltas"] == []
