"""Tests for layers: activations, dense, conv, pooling (values + grads)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.conv import col2im, conv_output_size, im2col
from tests.conftest import directional_gradcheck


class TestActivationValues:
    def test_relu_masks_negatives(self, rng):
        x = np.array([[-1e30, -1.0, 0.0, 2.0, 1e30]], dtype=np.float32)
        out = nn.ReLU().forward(x)
        expected = np.array([[0.0, 0.0, 0.0, 2.0, 1e30]], dtype=np.float32)
        assert np.array_equal(out, expected)

    def test_leaky_relu(self):
        x = np.array([[-10.0, 10.0]], dtype=np.float32)
        out = nn.LeakyReLU(0.1).forward(x)
        assert np.allclose(out, [[-1.0, 10.0]])

    def test_sigmoid_saturates_large_faulty_values(self):
        # Masking effect: sigmoid bounds even 1e30-magnitude faults.
        x = np.array([[-1e30, 1e30]], dtype=np.float32)
        out = nn.Sigmoid().forward(x)
        assert np.allclose(out, [[0.0, 1.0]])

    def test_tanh_range(self, rng):
        out = nn.Tanh().forward(rng.normal(size=(10, 10)).astype(np.float32) * 100)
        assert np.all(np.abs(out) <= 1.0)

    def test_scaled_relu_preserves_variance(self, rng):
        x = rng.normal(size=(100_000,)).astype(np.float32)
        out = nn.ScaledReLU().forward(x)
        assert out.var() == pytest.approx(1.0, rel=0.05)

    def test_silu_zero_at_zero(self):
        assert nn.SiLU().forward(np.zeros((1, 1), np.float32))[0, 0] == 0.0

    def test_gelu_known_values(self):
        out = nn.GELU().forward(np.array([[0.0, 100.0]], dtype=np.float32))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert out[0, 1] == pytest.approx(100.0, rel=1e-4)


@pytest.mark.parametrize(
    "activation",
    [nn.ReLU, nn.LeakyReLU, nn.Sigmoid, nn.Tanh, nn.GELU, nn.SiLU, nn.ScaledReLU],
)
def test_activation_gradients(activation, rng):
    act = activation()
    x = rng.normal(size=(8, 6)).astype(np.float32) + 0.05  # avoid kinks
    eps = 1e-3
    act.forward(x)
    g = np.ones_like(x)
    analytic = act.backward(g)
    numeric = (act.forward(x + eps) - act.forward(x - eps)) / (2 * eps)
    # Re-run forward(x) so later backward calls see consistent caches.
    act.forward(x)
    assert np.allclose(analytic, numeric, rtol=0.05, atol=1e-3)


class TestDense:
    def test_forward_values(self, rng):
        layer = nn.Dense(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        out = layer.forward(x)
        ref = x @ layer.weight.data + layer.bias.data
        assert np.allclose(out, ref, atol=1e-6)

    def test_gradcheck(self, rng):
        model = nn.Sequential(nn.Dense(5, 7, rng), nn.Tanh(), nn.Dense(7, 3, rng))
        x = rng.normal(size=(6, 5)).astype(np.float32)
        y = rng.integers(0, 3, size=6)
        err = directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng)
        assert err < 0.02

    def test_3d_input(self, rng):
        layer = nn.Dense(4, 6, rng)
        x = rng.normal(size=(2, 5, 4)).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == (2, 5, 6)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_no_bias(self, rng):
        layer = nn.Dense(3, 2, rng, use_bias=False)
        assert not hasattr(layer, "bias") or "bias" not in layer._params
        out = layer.forward(np.zeros((1, 3), np.float32))
        assert np.all(out == 0)

    def test_fan_in(self, rng):
        assert nn.Dense(12, 5, rng).fan_in == 12


class TestIm2Col:
    def test_output_size(self):
        assert conv_output_size(16, 3, 1, 1) == 16
        assert conv_output_size(16, 3, 2, 1) == 8
        assert conv_output_size(5, 2, 2, 0) == 2

    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        col = im2col(x, 3, 3, 1, 1)
        assert col.shape == (2 * 8 * 8, 3 * 3 * 3)

    @given(
        st.integers(min_value=1, max_value=3),  # n
        st.integers(min_value=1, max_value=3),  # c
        st.integers(min_value=4, max_value=7),  # h=w
        st.integers(min_value=1, max_value=3),  # k
        st.integers(min_value=1, max_value=2),  # stride
        st.integers(min_value=0, max_value=1),  # padding
    )
    @settings(max_examples=40, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, n, c, s, k, stride, padding):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity
        that makes the conv backward pass correct."""
        if conv_output_size(s, k, stride, padding) < 1:
            return
        rng = np.random.default_rng(n * 100 + c * 10 + s)
        x = rng.normal(size=(n, c, s, s)).astype(np.float32)
        col = im2col(x, k, k, stride, padding)
        y = rng.normal(size=col.shape).astype(np.float32)
        lhs = float(np.sum(col * y))
        back = col2im(y, x.shape, k, k, stride, padding)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-3, abs=1e-3)


class TestConv2D:
    def test_matches_naive_convolution(self, rng):
        layer = nn.Conv2D(2, 3, 3, rng, stride=1, padding=1)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        out = layer.forward(x)
        # Naive direct convolution reference.
        w, b = layer.weight.data, layer.bias.data
        padded = np.pad(x, [(0, 0), (0, 0), (1, 1), (1, 1)])
        ref = np.zeros_like(out)
        for co in range(3):
            for i in range(5):
                for j in range(5):
                    patch = padded[0, :, i : i + 3, j : j + 3]
                    ref[0, co, i, j] = np.sum(patch * w[co]) + b[co]
        assert np.allclose(out, ref, atol=1e-4)

    def test_stride_changes_shape(self, rng):
        layer = nn.Conv2D(3, 4, 3, rng, stride=2)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 4, 4, 4)

    def test_gradcheck(self, rng):
        model = nn.Sequential(nn.Conv2D(2, 4, 3, rng), nn.Tanh(),
                              nn.GlobalAvgPool2D(), nn.Dense(4, 3, rng))
        x = rng.normal(size=(4, 2, 6, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=4)
        err = directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng)
        assert err < 0.02

    def test_wrong_channels_raises(self, rng):
        layer = nn.Conv2D(3, 4, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2, 8, 8), np.float32))

    def test_fan_in(self, rng):
        assert nn.Conv2D(4, 8, 3, rng).fan_in == 4 * 9


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = nn.MaxPool2D(2).forward(x)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        pool = nn.MaxPool2D(2)
        pool.forward(x)
        g = pool.backward(np.ones((1, 1, 2, 2), np.float32))
        assert g[0, 0, 1, 1] == 1.0  # element 5
        assert g[0, 0, 0, 0] == 0.0
        assert g.sum() == 4.0

    def test_avgpool_values(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        out = nn.AvgPool2D(2).forward(x)
        assert np.allclose(out, 1.0)

    def test_avgpool_backward_uniform(self):
        pool = nn.AvgPool2D(2)
        pool.forward(np.zeros((1, 1, 4, 4), np.float32))
        g = pool.backward(np.ones((1, 1, 2, 2), np.float32))
        assert np.allclose(g, 0.25)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        pool = nn.GlobalAvgPool2D()
        out = pool.forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(2, 3)), atol=1e-6)
        g = pool.backward(np.ones((2, 3), np.float32))
        assert np.allclose(g, 1.0 / 16)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = nn.Dropout(0.5, seed=0)
        drop.training = False
        x = rng.normal(size=(8, 8)).astype(np.float32)
        assert np.array_equal(drop.forward(x), x)

    def test_reseed_reproduces_mask(self, rng):
        x = rng.normal(size=(32, 32)).astype(np.float32)
        drop = nn.Dropout(0.5, seed=1)
        a = drop.forward(x)
        drop.reseed(1)
        b = drop.forward(x)
        assert np.array_equal(a, b)

    def test_expectation_preserved(self, rng):
        x = np.ones((200, 200), dtype=np.float32)
        out = nn.Dropout(0.3, seed=2).forward(x)
        assert out.mean() == pytest.approx(1.0, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_backward_uses_same_mask(self, rng):
        drop = nn.Dropout(0.5, seed=3)
        x = rng.normal(size=(16, 16)).astype(np.float32)
        out = drop.forward(x)
        g = drop.backward(np.ones_like(x))
        assert np.array_equal(g == 0, out == 0)


class TestFlatten:
    def test_round_trip(self, rng):
        flat = nn.Flatten()
        x = rng.normal(size=(2, 3, 4, 5)).astype(np.float32)
        out = flat.forward(x)
        assert out.shape == (2, 60)
        back = flat.backward(out)
        assert np.array_equal(back, x)
