"""Tests for the observability layer (``repro.observe``).

Covers the tracer ring buffer and its crash-tolerant JSONL round trip,
the counters/histograms with their disabled fast path, the profiling
scopes, and the end-to-end integration: one trainer run under
injection + mitigation must tell the whole story (fault_injected,
detector_fired, rollback, iteration_stats) through a single tracer —
each structural event exactly once, even though recovery re-executes
the faulty iteration.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.accelerator.ffs import FFDescriptor
from repro.cli import main
from repro.core.faults import FaultInjector, HardwareFault, OpSite
from repro.core.mitigation import (
    HardwareFailureDetector,
    MitigationHook,
    RecoveryManager,
)
from repro.observe import (
    DETECTOR_FIRED,
    FAULT_INJECTED,
    ITERATION_STATS,
    NULL_TRACER,
    PROFILER,
    ROLLBACK,
    TRACE_SCHEMA_VERSION,
    Counter,
    Histogram,
    MetricsRegistry,
    Profiler,
    TraceFormatError,
    Tracer,
    TraceSchemaError,
    counter,
    metrics_enabled,
    profile_scope,
    read_trace,
    render_profile,
    set_metrics_enabled,
)


# ----------------------------------------------------------------------
# Tracer ring buffer
# ----------------------------------------------------------------------
class TestTracer:
    def test_emit_returns_typed_event(self):
        tracer = Tracer()
        event = tracer.emit(ITERATION_STATS, iteration=3, loss=0.5)
        assert event.type == ITERATION_STATS
        assert event.iteration == 3
        assert event.data == {"loss": 0.5}
        assert event.seq == 0

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event type"):
            Tracer().emit("not_a_real_event")

    def test_disabled_emit_is_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.emit(ITERATION_STATS, loss=1.0) is None
        assert len(tracer) == 0
        assert tracer.emitted == 0

    def test_null_tracer_is_shared_and_disabled(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(ITERATION_STATS, loss=1.0)
        assert len(NULL_TRACER) == 0

    def test_ring_drops_oldest_and_accounts_them(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit(ITERATION_STATS, iteration=i)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        # The survivors are the newest events, ordering preserved.
        assert [e.iteration for e in tracer.events()] == [6, 7, 8, 9]
        assert [e.seq for e in tracer.events()] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_filtering_by_type_and_iteration(self):
        tracer = Tracer()
        for i in range(6):
            tracer.emit(ITERATION_STATS, iteration=i)
        tracer.emit(ROLLBACK, iteration=3, resume_iteration=1)
        assert len(tracer.events(ROLLBACK)) == 1
        assert [e.iteration for e in
                tracer.events(ITERATION_STATS, min_iteration=2,
                              max_iteration=4)] == [2, 3, 4]
        assert tracer.type_counts() == {ITERATION_STATS: 6, ROLLBACK: 1}

    def test_clear_resets_accounting(self):
        tracer = Tracer(capacity=2)
        for _ in range(5):
            tracer.emit(ITERATION_STATS)
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0 and tracer.dropped == 0


# ----------------------------------------------------------------------
# JSONL export / crash-tolerant read
# ----------------------------------------------------------------------
class TestTraceExport:
    def _traced(self, tmp_path, n=5):
        tracer = Tracer(meta={"workload": "resnet"})
        for i in range(n):
            tracer.emit(ITERATION_STATS, iteration=i, loss=1.0 / (i + 1))
        path = tmp_path / "run.trace.jsonl"
        tracer.export(path, meta={"devices": 2})
        return tracer, path

    def test_round_trip(self, tmp_path):
        tracer, path = self._traced(tmp_path)
        trace = read_trace(path)
        assert trace.meta == {"workload": "resnet", "devices": 2}
        assert trace.emitted == 5 and trace.dropped == 0
        assert trace.truncated is False
        assert [e.iteration for e in trace.events] == list(range(5))
        assert [e.data["loss"] for e in trace.events] == \
            [e.data["loss"] for e in tracer.events()]

    def test_header_follows_store_conventions(self, tmp_path):
        _, path = self._traced(tmp_path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["record"] == "header"
        assert header["kind"] == "trace"
        assert header["schema"] == TRACE_SCHEMA_VERSION

    def test_numpy_scalars_in_payload_export_cleanly(self, tmp_path):
        tracer = Tracer()
        tracer.emit(ITERATION_STATS, iteration=0, loss=np.float32(0.25),
                    count=np.int64(3))
        path = tmp_path / "np.trace.jsonl"
        tracer.export(path)
        event = read_trace(path).events[0]
        assert event.data == {"loss": 0.25, "count": 3}

    def test_truncated_final_line_is_recovered_around(self, tmp_path):
        """A writer killed mid-line loses only the line in flight."""
        _, path = self._traced(tmp_path, n=5)
        text = path.read_text()
        path.write_text(text[: text.rfind('"loss"') + 9])  # cut mid-record
        trace = read_trace(path)
        assert trace.truncated is True
        assert [e.iteration for e in trace.events] == [0, 1, 2, 3]

    def test_mid_file_corruption_is_a_hard_error(self, tmp_path):
        _, path = self._traced(tmp_path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:10]  # corrupt a non-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="corrupt trace record"):
            read_trace(path)

    def test_unknown_schema_version_rejected(self, tmp_path):
        _, path = self._traced(tmp_path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = TRACE_SCHEMA_VERSION + 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceSchemaError):
            read_trace(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record":"event","type":"rollback","seq":0,"t":0}\n')
        with pytest.raises(TraceFormatError, match="not a trace header"):
            read_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            read_trace(path)


# ----------------------------------------------------------------------
# Counters / histograms
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_increments(self):
        c = Counter("t.c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        c.reset()
        assert c.value == 0.0

    def test_disabled_fast_path(self):
        c = Counter("t.off")
        h = Histogram("t.hoff")
        set_metrics_enabled(False)
        try:
            assert metrics_enabled() is False
            c.inc()
            h.observe(0.5)
        finally:
            set_metrics_enabled(True)
        assert c.value == 0.0
        assert h.count == 0

    def test_histogram_buckets_and_quantiles(self):
        h = Histogram("t.h", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 2.0, 3.0, 20.0, 500.0):
            h.observe(v)
        assert h.count == 5
        assert h.counts.tolist() == [1, 2, 1, 1]
        assert h.total == pytest.approx(525.5)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == 500.0  # overflow bucket reports the max
        summary = h.summary()
        assert summary["type"] == "histogram" and summary["count"] == 5

    def test_histogram_no_per_observation_allocation(self):
        h = Histogram("t.alloc")
        buckets_before = h.counts
        for v in np.linspace(0.0, 5.0, 100):
            h.observe(float(v))
        assert h.counts is buckets_before  # same fixed int64 array

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("t.bad", bounds=(1.0, 1.0))

    def test_registry_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert reg.counter("x") is c
        with pytest.raises(TypeError):
            reg.histogram("x")
        reg.histogram("y").observe(1.0)
        snap = reg.snapshot()
        assert snap["x"]["type"] == "counter"
        assert snap["y"]["type"] == "histogram"
        reg.reset()
        assert reg.counter("x").value == 0.0
        assert "x" in reg and len(reg) == 2


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_disabled_scope_is_shared_noop(self):
        profiler = Profiler(enabled=False)
        assert profiler.scope("a") is profiler.scope("b")
        with profiler.scope("a"):
            pass
        assert profiler.stats() == {}

    def test_enabled_scope_accumulates(self):
        profiler = Profiler(enabled=True)
        for _ in range(3):
            with profiler.scope("work"):
                pass
        stat = profiler.stats()["work"]
        assert stat.count == 3
        assert stat.total >= 0.0
        assert stat.min <= stat.mean() <= stat.max

    def test_report_sorted_by_total_time(self):
        profiler = Profiler(enabled=True)
        with profiler.scope("fast"):
            pass
        with profiler.scope("slow"):
            sum(range(20000))
        report = profiler.report()
        assert [r["scope"] for r in report] == \
            sorted((r["scope"] for r in report),
                   key=lambda s: -profiler.stats()[s].total)

    def test_global_profile_scope_default_off(self):
        assert PROFILER.enabled is False
        with profile_scope("test.noop"):
            pass
        assert "test.noop" not in PROFILER.stats()

    def test_render_profile_empty_and_filled(self):
        assert "no profile samples" in render_profile([])
        text = render_profile([{"scope": "s", "count": 1, "total_s": 0.5,
                                "mean_us": 5e5, "min_us": 5e5, "max_us": 5e5}])
        assert "scope" in text and "s" in text


# ----------------------------------------------------------------------
# End-to-end integration: one tracer tells the whole experiment story
# ----------------------------------------------------------------------
class TestTrainerIntegration:
    def test_iteration_stats_emitted_per_iteration(self, make_trainer):
        tracer = Tracer()
        trainer = make_trainer(num_devices=2, tracer=tracer)
        trainer.train(4)
        stats = tracer.events(ITERATION_STATS)
        assert [e.iteration for e in stats] == [0, 1, 2, 3]
        record = trainer.record
        assert [e.data["loss"] for e in stats] == \
            [float(v) for v in record.train_loss]

    def test_default_trainer_uses_null_tracer(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        assert trainer.tracer is NULL_TRACER
        trainer.train(2)
        assert len(NULL_TRACER) == 0

    def test_mitigated_injection_story(self, make_trainer):
        """Injection under mitigation: each structural event exactly once,
        even though recovery re-executes the faulty iteration."""
        tracer = Tracer()
        trainer = make_trainer(num_devices=2, tracer=tracer,
                               stop_on_nonfinite=False)
        fault = HardwareFault(
            ff=FFDescriptor("global_control", group=1, has_feedback=True),
            site=OpSite("1.conv1", "weight_grad"), iteration=5, device=1,
            seed=3)
        detector = HardwareFailureDetector()
        counter("detector.detections").reset()
        counter("recovery.rollbacks").reset()
        trainer.add_hook(FaultInjector(fault))
        trainer.add_hook(MitigationHook(detector, RecoveryManager()))
        trainer.train(20)

        assert detector.fired, "group-1 fault must be detected"
        counts = tracer.type_counts()
        assert counts[FAULT_INJECTED] == 1
        assert counts[DETECTOR_FIRED] == len(detector.events)
        assert counts[ROLLBACK] == len(trainer.record.recoveries) == 1
        injected = tracer.events(FAULT_INJECTED)[0]
        assert injected.iteration == 5
        assert injected.data["device"] == 1
        assert injected.data["site"] == "1.conv1"
        fired = tracer.events(DETECTOR_FIRED)[0]
        assert fired.data["condition"] in ("first_moment", "second_moment",
                                           "mvar")
        rollback = tracer.events(ROLLBACK)[0]
        assert rollback.data["resume_iteration"] <= fired.iteration
        # Ordering: the rollback is the last act of the faulty iteration
        # (detection fires at after_step, the injector attributes its
        # record at disarm, and the mitigation hook rewinds last).
        assert fired.seq < rollback.seq
        assert injected.seq < rollback.seq
        # Counters tracked the same story.
        assert counter("detector.detections").value == len(detector.events)
        assert counter("recovery.rollbacks").value == 1


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestObserveCli:
    def test_train_trace_export_and_render(self, capsys, tmp_path):
        trace_path = tmp_path / "run.trace.jsonl"
        rc = main(["train", "resnet", "--iterations", "4", "--devices", "2",
                   "--trace", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"trace: 4 events -> {trace_path}" in out

        rc = main(["trace", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 events recovered" in out
        assert "iteration_stats" in out

        rc = main(["trace", str(trace_path), "--summary"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "iteration_stats" in out and "4" in out

        rc = main(["trace", str(trace_path), "--type", "rollback"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rollback" not in out.splitlines()[-1]

    def test_trace_missing_file_is_clean_error(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_corrupt_file_is_clean_error(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record":"header","kind":"nope"}\n')
        assert main(["trace", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_command_reports_hot_paths(self, capsys):
        rc = main(["profile", "resnet", "--iterations", "4", "--devices",
                   "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optim.step" in out
        assert "sync.grad_average" in out
        assert "state.snapshot" in out
        assert PROFILER.enabled is False  # profiling off again afterwards
