"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "resnet"])
        args.size = "tiny"
        assert args.workload == "resnet"
        assert args.iterations == 60

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "alexnet"])

    def test_inject_fault_args(self):
        args = build_parser().parse_args([
            "inject", "resnet", "--group", "1", "--site", "2.conv1",
            "--kind", "forward", "--iteration", "5",
        ])
        assert args.group == 1
        assert args.site == "2.conv1"

    def test_campaign_engine_args(self):
        args = build_parser().parse_args([
            "campaign", "resnet", "--parallel", "4", "--store", "r.jsonl",
            "--resume", "--timeout", "30", "--progress-every", "10",
        ])
        assert args.parallel == 4
        assert args.store == "r.jsonl"
        assert args.resume is True
        assert args.timeout == 30.0
        assert args.progress_every == 10


class TestCommands:
    def test_train(self, capsys):
        rc = main(["train", "resnet", "--iterations", "6", "--devices", "2",
                   "--report-every", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resnet fault-free" in out
        assert "iter     0" in out

    def test_inject_reports_outcome(self, capsys):
        rc = main(["inject", "resnet", "--group", "1", "--iteration", "4",
                   "--iterations", "12", "--devices", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault effect:" in out
        assert "outcome:" in out

    def test_campaign(self, capsys):
        rc = main(["campaign", "resnet", "--experiments", "3", "--devices", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "# campaign: resnet (3 experiments)" in out
        assert "unexpected rate" in out

    def test_validate(self, capsys):
        rc = main(["validate", "--experiments", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "match rate 100.0%" in out

    def test_mitigate_detects(self, capsys):
        rc = main(["mitigate", "resnet", "--group", "1", "--iteration", "5",
                   "--iterations", "20", "--devices", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "detected at iteration" in out
        assert "re-executed from" in out

    def test_datapath_bit_fault(self, capsys):
        rc = main(["inject", "resnet", "--bit", "3", "--iteration", "4",
                   "--iterations", "10", "--devices", "2"])
        assert rc == 0
        assert "outcome:" in capsys.readouterr().out

    def test_resume_requires_store(self, capsys):
        rc = main(["campaign", "resnet", "--experiments", "1", "--resume"])
        assert rc == 2
        assert "--resume requires --store" in capsys.readouterr().err


class TestEngineCommands:
    def test_campaign_store_report_merge(self, capsys, tmp_path):
        """Parallel campaign into a store, then report and merge it."""
        store = tmp_path / "r.jsonl"
        rc = main(["campaign", "resnet", "--experiments", "2", "--devices",
                   "2", "--parallel", "2", "--store", str(store),
                   "--progress-every", "1"])
        out, err = capsys.readouterr()
        assert rc == 0
        assert "engine: 2 executed, 0 resumed" in out
        assert "[engine]" in err

        rc = main(["report", str(store)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "kind campaign, schema 1, 2 experiments" in out
        assert "# campaign: resnet (2 experiments)" in out

        rc = main(["merge", str(tmp_path / "m.jsonl"), str(store), str(store)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 experiments, 0 quarantined" in out

    def test_store_clobber_without_resume_is_clean_error(self, capsys,
                                                         tmp_path):
        store = tmp_path / "r.jsonl"
        argv = ["campaign", "resnet", "--experiments", "1", "--devices", "2",
                "--store", str(store)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--resume" in err

    def test_report_missing_store_is_clean_error(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_campaign_resume_skips_finished(self, capsys, tmp_path):
        store = tmp_path / "r.jsonl"
        argv = ["campaign", "resnet", "--experiments", "2", "--devices", "2",
                "--store", str(store)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        assert "engine: 0 executed, 2 resumed" in capsys.readouterr().out
