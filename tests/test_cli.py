"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "resnet"])
        args.size = "tiny"
        assert args.workload == "resnet"
        assert args.iterations == 60

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "alexnet"])

    def test_inject_fault_args(self):
        args = build_parser().parse_args([
            "inject", "resnet", "--group", "1", "--site", "2.conv1",
            "--kind", "forward", "--iteration", "5",
        ])
        assert args.group == 1
        assert args.site == "2.conv1"


class TestCommands:
    def test_train(self, capsys):
        rc = main(["train", "resnet", "--iterations", "6", "--devices", "2",
                   "--report-every", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resnet fault-free" in out
        assert "iter     0" in out

    def test_inject_reports_outcome(self, capsys):
        rc = main(["inject", "resnet", "--group", "1", "--iteration", "4",
                   "--iterations", "12", "--devices", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault effect:" in out
        assert "outcome:" in out

    def test_campaign(self, capsys):
        rc = main(["campaign", "resnet", "--experiments", "3", "--devices", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "# campaign: resnet (3 experiments)" in out
        assert "unexpected rate" in out

    def test_validate(self, capsys):
        rc = main(["validate", "--experiments", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "match rate 100.0%" in out

    def test_mitigate_detects(self, capsys):
        rc = main(["mitigate", "resnet", "--group", "1", "--iteration", "5",
                   "--iterations", "20", "--devices", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "detected at iteration" in out
        assert "re-executed from" in out

    def test_datapath_bit_fault(self, capsys):
        rc = main(["inject", "resnet", "--bit", "3", "--iteration", "4",
                   "--iterations", "10", "--devices", "2"])
        assert rc == 0
        assert "outcome:" in capsys.readouterr().out
