"""Tests for the live campaign monitor (repro.engine.monitor)."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.engine import (
    ResultStore,
    collect,
    evaluate_alerts,
    monitor_flat_metrics,
    render_html,
    render_markdown,
    render_text,
    telemetry_sample,
)
from repro.engine.worker import UnitCapture
from repro.observe import DETECTOR_FIRED, ITERATION_STATS, Tracer, shard_path


def _fixture_store(path, outcomes=("ok", "ok", "latent_inf_nan"),
                   quarantined=("key9",), total=6):
    store = ResultStore(path, kind="campaign",
                        meta={"workload": "resnet",
                              "num_experiments": total})
    for i, outcome in enumerate(outcomes):
        store.append(f"key{i}", {"outcome": outcome, "index": i})
    for key in quarantined:
        store.quarantine(key, "RuntimeError: deliberate failure")
    store.close()
    return path


def _busy_shard(directory, worker_id, key="key5", finished=1):
    """A shard whose worker is mid-experiment (started, not finished)."""
    path = shard_path(directory, worker_id)
    with Tracer(stream=path, meta={"worker": worker_id}) as tracer:
        capture = UnitCapture(tracer, worker_id)
        for i in range(finished):
            capture.start(f"done{worker_id}_{i}")
            capture.done({"outcome": "ok"})
        capture.start(key)
        tracer.emit(ITERATION_STATS, iteration=0, loss=1.0)
    return path


class TestCollect:
    def test_store_progress_and_breakdown(self, tmp_path):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        state = collect(store_path)
        assert state.kind == "campaign"
        assert state.total == 6
        assert state.completed == 3
        assert state.quarantined == 1
        assert state.attempted == 4
        assert state.breakdown == {"ok": 2, "latent_inf_nan": 1}
        assert state.quarantine_rate == pytest.approx(0.25)
        assert state.divergence_rate == pytest.approx(1 / 3)
        assert state.recent[-1]["outcome"] == "quarantined"
        assert state.last_result_age is not None

    def test_worker_shards_busy_and_idle(self, tmp_path):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        _busy_shard(tmp_path, 0)
        with Tracer(stream=shard_path(tmp_path, 1)) as tracer:
            capture = UnitCapture(tracer, 1)
            capture.start("done1")
            capture.done({"outcome": "ok"})
        state = collect(store_path)
        assert [w.worker for w in state.workers] == [0, 1]
        busy, idle = state.workers
        assert busy.busy_key == "key5"
        assert busy.finished == 1
        assert idle.busy_key is None
        assert idle.finished == 1
        assert state.stalled_workers == []

    def test_stall_detection_from_shard_age(self, tmp_path):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        shard = _busy_shard(tmp_path, 0)
        stale = time.time() - 120
        os.utime(shard, (stale, stale))
        state = collect(store_path, stall_after=30.0)
        assert state.workers[0].stalled
        assert state.stalled_workers == [0]
        # An idle worker is never stalled, no matter how old its shard.
        state = collect(store_path, stall_after=None)
        assert state.stalled_workers == []

    def test_unreadable_shard_is_flagged_not_fatal(self, tmp_path):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        shard_path(tmp_path, 0).write_text('{"record":"hea', encoding="utf-8")
        state = collect(store_path)
        assert state.workers[0].unreadable

    def test_detections_collected_from_shards(self, tmp_path):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        path = shard_path(tmp_path, 0)
        with Tracer(stream=path) as tracer:
            capture = UnitCapture(tracer, 0)
            capture.start("key0")
            tracer.emit(DETECTOR_FIRED, iteration=7,
                        condition="gradient_history", magnitude=1e9,
                        bound=1.0)
            capture.done({"outcome": "degraded"})
        state = collect(store_path)
        assert state.detections[-1]["key"] == "key0"
        assert state.detections[-1]["iteration"] == 7


class TestAlerts:
    def test_quarantine_rate_alert(self, tmp_path):
        state = collect(_fixture_store(tmp_path / "r.jsonl"))
        assert evaluate_alerts(state, max_quarantine_rate=0.5) == []
        alerts = evaluate_alerts(state, max_quarantine_rate=0.1)
        assert len(alerts) == 1 and "quarantine rate" in alerts[0]
        assert state.alerts == alerts

    def test_divergence_rate_alert(self, tmp_path):
        state = collect(_fixture_store(tmp_path / "r.jsonl"))
        assert evaluate_alerts(state, max_divergence_rate=0.5) == []
        alerts = evaluate_alerts(state, max_divergence_rate=0.2)
        assert len(alerts) == 1 and "divergence rate" in alerts[0]

    def test_stalled_worker_alert(self, tmp_path):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        shard = _busy_shard(tmp_path, 2)
        stale = time.time() - 120
        os.utime(shard, (stale, stale))
        state = collect(store_path, stall_after=30.0)
        alerts = evaluate_alerts(state)
        assert alerts == ["stalled workers: w2"]


class TestRendering:
    @pytest.fixture
    def state(self, tmp_path):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        shard = _busy_shard(tmp_path, 0)
        stale = time.time() - 120
        os.utime(shard, (stale, stale))
        state = collect(store_path, stall_after=30.0)
        evaluate_alerts(state, max_quarantine_rate=0.1)
        return state

    def test_render_text(self, state):
        text = render_text(state)
        assert "3/6 done" in text
        assert "1 quarantined" in text
        assert "latent_inf_nan:1" in text
        assert "STALLED key=key5" in text
        assert "ALERT" in text and "quarantine rate" in text

    def test_render_markdown(self, state):
        md = render_markdown(state)
        assert "| latent_inf_nan | 1 |" in md
        assert "**STALLED** `key5`" in md
        assert "> **ALERT**" in md

    def test_render_html_escapes(self, state):
        state.meta["workload"] = "<resnet>"
        page = render_html(state)
        assert "<!DOCTYPE html>" in page
        assert "&lt;resnet&gt;" in page
        assert "<resnet>" not in page
        assert "STALLED key5" in page


class TestMonitorCli:
    def test_once_ok_exit_zero(self, tmp_path, capsys):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        rc = main(["monitor", str(store_path), "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "campaign monitor" in out
        assert "3/6 done" in out

    def test_once_alert_exit_nonzero(self, tmp_path, capsys):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        rc = main(["monitor", str(store_path), "--once",
                   "--max-quarantine-rate", "0.1"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "quarantine rate" in captured.err

    def test_html_and_markdown_exports(self, tmp_path, capsys):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        html_out = tmp_path / "dash.html"
        md_out = tmp_path / "dash.md"
        rc = main(["monitor", str(store_path), "--once",
                   "--html", str(html_out), "--markdown", str(md_out)])
        assert rc == 0
        assert "<!DOCTYPE html>" in html_out.read_text(encoding="utf-8")
        assert "# Campaign monitor" in md_out.read_text(encoding="utf-8")

    def test_follow_exits_when_campaign_complete(self, tmp_path, capsys):
        store_path = _fixture_store(
            tmp_path / "r.jsonl",
            outcomes=("ok", "ok", "ok", "ok", "ok"), quarantined=("key9",),
            total=6)
        rc = main(["monitor", str(store_path), "--follow",
                   "--interval", "0.01"])
        assert rc == 0
        assert "5/6 done" in capsys.readouterr().out


class TestFlatMetricsAndSample:
    def test_monitor_flat_metrics_namespace(self, tmp_path):
        state = collect(_fixture_store(tmp_path / "r.jsonl"))
        flat = monitor_flat_metrics(state)
        assert flat["campaign.completed"] == 3.0
        assert flat["campaign.quarantined"] == 1.0
        assert flat["campaign.quarantine_rate"] == pytest.approx(0.25)
        assert flat["campaign.divergence_rate"] == pytest.approx(1 / 3)
        assert flat["workers.stalled"] == 0.0

    def test_rates_absent_before_any_data(self, tmp_path):
        # An empty campaign must leave rate metrics out (no_data), not
        # report a trivially-passing 0.0.
        store_path = _fixture_store(tmp_path / "r.jsonl", outcomes=(),
                                    quarantined=())
        flat = monitor_flat_metrics(collect(store_path))
        assert "campaign.quarantine_rate" not in flat
        assert "campaign.divergence_rate" not in flat
        assert flat["campaign.completed"] == 0.0

    def test_telemetry_sample_mirrors_state(self, tmp_path):
        state = collect(_fixture_store(tmp_path / "r.jsonl"))
        sample = telemetry_sample(state, now=123.0)
        assert sample.t == 123.0
        assert sample.gauges["campaign.done"] == 3.0
        assert sample.gauges["campaign.total"] == 6.0
        assert sample.gauges["campaign.remaining"] == 2.0
        assert sample.outcomes == {"latent_inf_nan": 1, "ok": 2}
        # The flat view feeds the same SLO namespace the rules address.
        assert sample.flat()["outcome.latent_inf_nan"] == 1.0


class TestMonitorSlo:
    def _rules(self, tmp_path, rules):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(rules), encoding="utf-8")
        return path

    def test_json_embeds_slo_statuses(self, tmp_path, capsys):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        rules = self._rules(tmp_path, [
            {"name": "qrate", "metric": "campaign.quarantine_rate",
             "max": 0.1, "severity": "critical"},
            {"name": "healthy-divergence",
             "metric": "campaign.divergence_rate", "max": 0.9}])
        rc = main(["monitor", str(store_path), "--json",
                   "--slo", str(rules)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1  # the 0.25 quarantine rate breaches max=0.1
        by_rule = {s["rule"]: s for s in doc["slo"]}
        assert by_rule["qrate"]["state"] == "firing"
        assert by_rule["healthy-divergence"]["state"] == "ok"

    def test_text_mode_prints_firing_rules_and_gates(self, tmp_path, capsys):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        rules = self._rules(tmp_path, [
            {"name": "qrate", "metric": "campaign.quarantine_rate",
             "max": 0.1}])
        rc = main(["monitor", str(store_path), "--once",
                   "--slo", str(rules)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SLO" in out and "qrate" in out

    def test_passing_rules_exit_zero(self, tmp_path, capsys):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        rules = self._rules(tmp_path, [
            {"name": "qrate", "metric": "campaign.quarantine_rate",
             "max": 0.9}])
        rc = main(["monitor", str(store_path), "--once",
                   "--slo", str(rules)])
        assert rc == 0

    def test_malformed_rules_are_usage_error(self, tmp_path, capsys):
        store_path = _fixture_store(tmp_path / "r.jsonl")
        rules = self._rules(tmp_path, [{"name": "bad", "metric": "m"}])
        rc = main(["monitor", str(store_path), "--once",
                   "--slo", str(rules)])
        assert rc == 2
