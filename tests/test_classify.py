"""Tests for the outcome classifier (Table 3 taxonomy)."""

import numpy as np
import pytest

from repro.core.analysis.classify import (
    ClassifierThresholds,
    Outcome,
    classify_outcome,
    outcome_breakdown,
)
from repro.training.metrics import ConvergenceRecord


def make_record(train_acc, test_acc=None, nonfinite_at=None) -> ConvergenceRecord:
    rec = ConvergenceRecord()
    for i, acc in enumerate(train_acc):
        rec.record_train(i, 1.0 - acc, acc)
    if test_acc is not None:
        for i, acc in enumerate(test_acc):
            rec.record_test(i * 10, acc)
    if nonfinite_at is not None:
        rec.nonfinite_at = nonfinite_at
    return rec


@pytest.fixture
def reference():
    """Fault-free reference: rises to 0.95 and stays there."""
    curve = np.concatenate([np.linspace(0.2, 0.95, 50), np.full(100, 0.95)])
    return make_record(curve, test_acc=np.full(15, 0.9))


T = 60  # injection iteration used throughout


class TestInfNanLatency:
    def test_immediate(self, reference):
        faulty = make_record(np.full(61, 0.9), nonfinite_at=T)
        report = classify_outcome(faulty, reference, T)
        assert report.outcome == Outcome.IMMEDIATE_INF_NAN

    def test_immediate_next_iteration(self, reference):
        # Backward-pass fault: INFs appear in the next forward pass.
        faulty = make_record(np.full(62, 0.9), nonfinite_at=T + 1)
        assert classify_outcome(faulty, reference, T).outcome == Outcome.IMMEDIATE_INF_NAN

    def test_short_term(self, reference):
        faulty = make_record(np.full(63, 0.9), nonfinite_at=T + 2)
        assert classify_outcome(faulty, reference, T).outcome == Outcome.SHORT_TERM_INF_NAN

    def test_latent_inf(self, reference):
        faulty = make_record(np.full(100, 0.9), nonfinite_at=T + 30)
        assert classify_outcome(faulty, reference, T).outcome == Outcome.LATENT_INF_NAN


class TestLatentOutcomes:
    def test_slow_degrade(self, reference):
        """Gradual decline over tens of iterations, stays low."""
        curve = np.concatenate([
            np.linspace(0.2, 0.95, 50), np.full(10, 0.95),
            np.linspace(0.95, 0.3, 40),  # slow decline
            np.full(50, 0.3),
        ])
        faulty = make_record(curve, test_acc=np.full(15, 0.3))
        report = classify_outcome(faulty, reference, T)
        assert report.outcome == Outcome.SLOW_DEGRADE
        assert not report.sharp_drop_at_injection

    def test_sharp_degrade(self, reference):
        """Immediate drop at the fault, then flat."""
        curve = np.concatenate([
            np.linspace(0.2, 0.95, 50), np.full(10, 0.95),
            np.full(90, 0.25),
        ])
        faulty = make_record(curve, test_acc=np.full(15, 0.25))
        report = classify_outcome(faulty, reference, T)
        assert report.outcome == Outcome.SHARP_DEGRADE
        assert report.sharp_drop_at_injection

    def test_sharp_slow_degrade(self, reference):
        """Sharp drop at the fault plus continued decline afterwards."""
        curve = np.concatenate([
            np.linspace(0.2, 0.95, 50), np.full(10, 0.95),
            np.full(6, 0.55),             # sharp drop
            np.linspace(0.55, 0.15, 40),  # continued slow degradation
            np.full(44, 0.15),
        ])
        faulty = make_record(curve, test_acc=np.full(15, 0.15))
        report = classify_outcome(faulty, reference, T)
        assert report.outcome == Outcome.SHARP_SLOW_DEGRADE

    def test_low_test_accuracy(self, reference):
        """Training accuracy normal; test accuracy visibly degraded —
        the mvar signature of Sec. 4.2.5."""
        curve = np.concatenate([np.linspace(0.2, 0.95, 50), np.full(100, 0.95)])
        faulty = make_record(curve, test_acc=np.concatenate(
            [np.full(6, 0.9), np.full(9, 0.2)]
        ))
        report = classify_outcome(faulty, reference, T)
        assert report.outcome == Outcome.LOW_TEST_ACCURACY


class TestBenignOutcomes:
    def test_masked_improved(self, reference):
        curve = np.concatenate([np.linspace(0.2, 0.96, 50), np.full(100, 0.97)])
        faulty = make_record(curve, test_acc=np.full(15, 0.91))
        assert classify_outcome(faulty, reference, T).outcome == Outcome.MASKED_IMPROVED

    def test_masked_slight_degrade(self, reference):
        curve = np.concatenate([np.linspace(0.2, 0.95, 50), np.full(100, 0.92)])
        faulty = make_record(curve, test_acc=np.full(15, 0.87))
        report = classify_outcome(faulty, reference, T)
        assert report.outcome == Outcome.MASKED_SLIGHT_DEGRADE
        assert not report.is_unexpected


class TestTaxonomyProperties:
    def test_unexpected_flags(self):
        assert not Outcome.MASKED_IMPROVED.is_unexpected
        assert not Outcome.MASKED_SLIGHT_DEGRADE.is_unexpected
        assert Outcome.SLOW_DEGRADE.is_unexpected
        assert Outcome.IMMEDIATE_INF_NAN.is_unexpected

    def test_latent_flags(self):
        assert Outcome.SLOW_DEGRADE.is_latent
        assert Outcome.LOW_TEST_ACCURACY.is_latent
        assert not Outcome.IMMEDIATE_INF_NAN.is_latent
        assert not Outcome.MASKED_IMPROVED.is_latent

    def test_breakdown_sums_to_one(self, reference):
        reports = []
        for nf in [T, T + 2, None]:
            faulty = make_record(np.full(150, 0.95), nonfinite_at=nf)
            reports.append(classify_outcome(faulty, reference, T))
        breakdown = outcome_breakdown(reports)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_breakdown_empty(self):
        assert outcome_breakdown([]) == {}

    def test_custom_thresholds(self, reference):
        th = ClassifierThresholds(slight_degrade=0.5)
        curve = np.concatenate([np.linspace(0.2, 0.95, 50), np.full(100, 0.6)])
        faulty = make_record(curve, test_acc=np.full(15, 0.6))
        # With a huge slight-degrade threshold, a 0.35 drop counts benign.
        report = classify_outcome(faulty, reference, T, th)
        assert not report.is_unexpected
