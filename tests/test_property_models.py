"""Property-based tests for the bit-flip primitives and Table 1 models.

Randomized (but seeded, so fully reproducible) checks of the algebraic
properties the fault models rely on:

* a bit flip is an involution, and its software-visible magnitude is
  exactly what the flipped IEEE-754 bit position dictates (sign flips
  negate, exponent-bit flips scale by ``2**(2**(bit-23))``, mantissa-bit
  flips stay within a factor of two);
* every Table 1 fault model perturbs only the elements it records,
  preserves shape/dtype, and keeps its faulty values inside the
  contract of its group (zeros for group 2, attenuation for group 7,
  in-range float32 for the random-value groups).

Plain seeded ``numpy.random.Generator`` draws — no extra dependencies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.dataflow import to_canonical
from repro.accelerator.ffs import FFDescriptor
from repro.core.faults.software_models import (
    FaultRecord,
    all_model_names,
    model_for_ff,
)
from repro.tensor.bits import (
    BFLOAT16_BITS,
    FLOAT32_BITS,
    bits_to_float32,
    flip_bfloat16_bit,
    flip_float32_bit,
    float32_to_bits,
    random_float32_pattern,
)

NUM_TRIALS = 200


def random_values(rng: np.random.Generator, size: int) -> np.ndarray:
    """Arbitrary float32 bit patterns, including subnormals/INFs/NaNs."""
    return random_float32_pattern(rng, size)


def normal_values(rng: np.random.Generator, size: int) -> np.ndarray:
    """Strictly normal (non-zero, non-subnormal, finite) float32 values."""
    values = random_float32_pattern(rng, size * 4)
    exponent = (float32_to_bits(values) >> np.uint32(23)) & np.uint32(0xFF)
    normal = values[(exponent != 0) & (exponent != 255)]
    assert normal.size >= size, "seeded draw produced too few normals"
    return normal[:size]


# ----------------------------------------------------------------------
# float32 bit flips
# ----------------------------------------------------------------------
class TestFloat32Flip:
    @pytest.mark.parametrize("bit", range(FLOAT32_BITS))
    def test_flip_is_an_involution(self, bit):
        rng = np.random.default_rng(1000 + bit)
        x = random_values(rng, NUM_TRIALS)
        twice = flip_float32_bit(flip_float32_bit(x, bit), bit)
        # Bitwise identity, so it also holds through NaN payloads.
        np.testing.assert_array_equal(float32_to_bits(twice),
                                      float32_to_bits(x))

    @pytest.mark.parametrize("bit", range(FLOAT32_BITS))
    def test_flip_changes_exactly_the_requested_bit(self, bit):
        rng = np.random.default_rng(2000 + bit)
        x = random_values(rng, NUM_TRIALS)
        xor = float32_to_bits(flip_float32_bit(x, bit)) ^ float32_to_bits(x)
        assert np.all(xor == np.uint32(1 << bit))

    def test_sign_flip_negates(self):
        rng = np.random.default_rng(3)
        x = random_values(rng, NUM_TRIALS)
        x = x[~np.isnan(x)]
        np.testing.assert_array_equal(flip_float32_bit(x, 31), -x)

    @pytest.mark.parametrize("bit", range(23, 31))
    def test_exponent_flip_magnitude_is_a_power_of_two(self, bit):
        """Flipping exponent bit b scales a normal value by exactly
        ``2**(+-2**(b-23))`` whenever the result is also normal."""
        rng = np.random.default_rng(4000 + bit)
        x = normal_values(rng, NUM_TRIALS)
        flipped = flip_float32_bit(x, bit)
        exponent = (float32_to_bits(flipped) >> np.uint32(23)) & np.uint32(0xFF)
        still_normal = (exponent != 0) & (exponent != 255)
        x, flipped = x[still_normal], flipped[still_normal]
        assert x.size > 0
        was_set = (float32_to_bits(x) >> np.uint32(bit)) & np.uint32(1)
        step = 2.0 ** (2 ** (bit - 23))
        expected = np.where(was_set == 1, 1.0 / step, step)
        # float32 values are exact in float64, and the mantissas cancel,
        # so the ratio is the exact power of two.
        ratio = flipped.astype(np.float64) / x.astype(np.float64)
        np.testing.assert_array_equal(ratio, expected)

    @pytest.mark.parametrize("bit", range(0, 23))
    def test_mantissa_flip_stays_within_a_factor_of_two(self, bit):
        rng = np.random.default_rng(5000 + bit)
        x = normal_values(rng, NUM_TRIALS)
        flipped = flip_float32_bit(x, bit)
        # Sign and exponent fields are untouched...
        np.testing.assert_array_equal(
            float32_to_bits(x) >> np.uint32(23),
            float32_to_bits(flipped) >> np.uint32(23))
        # ...so the value moves by strictly less than a factor of two.
        ratio = np.abs(flipped.astype(np.float64) / x.astype(np.float64))
        assert np.all((ratio > 0.5) & (ratio < 2.0))

    @pytest.mark.parametrize("bit", [-1, 32, 100])
    def test_out_of_range_bit_rejected(self, bit):
        with pytest.raises(ValueError):
            flip_float32_bit(np.float32(1.0), bit)


# ----------------------------------------------------------------------
# bfloat16 bit flips
# ----------------------------------------------------------------------
class TestBfloat16Flip:
    @staticmethod
    def truncate(x: np.ndarray) -> np.ndarray:
        """The value a bfloat16 datapath register actually holds."""
        return bits_to_float32(float32_to_bits(x) & np.uint32(0xFFFF0000))

    @pytest.mark.parametrize("bit", range(BFLOAT16_BITS))
    def test_flip_is_an_involution_on_the_truncated_value(self, bit):
        """The register truncates first, so flipping twice recovers the
        *truncated* value bit-exactly (not the full-precision input)."""
        rng = np.random.default_rng(6000 + bit)
        x = random_values(rng, NUM_TRIALS)
        twice = flip_bfloat16_bit(flip_bfloat16_bit(x, bit), bit)
        np.testing.assert_array_equal(float32_to_bits(twice),
                                      float32_to_bits(self.truncate(x)))

    @pytest.mark.parametrize("bit", range(BFLOAT16_BITS))
    def test_flip_changes_exactly_the_requested_encoding_bit(self, bit):
        rng = np.random.default_rng(7000 + bit)
        x = self.truncate(random_values(rng, NUM_TRIALS))
        xor = float32_to_bits(flip_bfloat16_bit(x, bit)) ^ float32_to_bits(x)
        # bfloat16 bit b lives at float32 bit b+16; low 16 bits stay zero.
        assert np.all(xor == np.uint32(1 << (bit + 16)))

    @pytest.mark.parametrize("bit", [-1, 16, 31])
    def test_out_of_range_bit_rejected(self, bit):
        with pytest.raises(ValueError):
            flip_bfloat16_bit(np.float32(1.0), bit)


# ----------------------------------------------------------------------
# Random-pattern sampling (Table 1 groups 1/3 value source)
# ----------------------------------------------------------------------
class TestRandomPattern:
    def test_dtype_shape_and_determinism(self):
        a = random_float32_pattern(np.random.default_rng(9), (32, 4))
        b = random_float32_pattern(np.random.default_rng(9), (32, 4))
        assert a.dtype == np.float32 and a.shape == (32, 4)
        np.testing.assert_array_equal(float32_to_bits(a), float32_to_bits(b))

    def test_patterns_span_the_dynamic_range(self):
        """Random encodings must reach both huge and tiny magnitudes
        ("values that can span the entire data precision dynamic range")."""
        values = random_float32_pattern(np.random.default_rng(10), 4096)
        finite = values[np.isfinite(values)]
        magnitude = np.abs(finite[finite != 0.0])
        assert magnitude.max() > 1e30
        assert magnitude.min() < 1e-30


# ----------------------------------------------------------------------
# Table 1 fault models
# ----------------------------------------------------------------------
def descriptor_for(name: str) -> FFDescriptor:
    if name == "datapath":
        return FFDescriptor("datapath", bit=30)
    if name == "local_control":
        return FFDescriptor("local_control", has_feedback=True)
    return FFDescriptor("global_control", group=int(name.removeprefix("group")),
                        has_feedback=True)


SHAPES = [(4, 8, 6, 6), (16, 32), (128,)]


@pytest.mark.parametrize("shape", SHAPES, ids=str)
@pytest.mark.parametrize("name", all_model_names())
class TestTable1ModelProperties:
    def _apply(self, name, shape, seed=0):
        rng = np.random.default_rng(seed)
        original = rng.standard_normal(shape).astype(np.float32)
        model = model_for_ff(descriptor_for(name))
        faulty, record = model.apply(original, rng, descriptor_for(name))
        return original, faulty, record

    def test_shape_and_dtype_preserved(self, name, shape):
        original, faulty, record = self._apply(name, shape)
        assert faulty.shape == original.shape
        assert faulty.dtype == np.float32
        assert isinstance(record, FaultRecord)
        assert record.model == name

    def test_record_positions_are_valid_indices(self, name, shape):
        original, _, record = self._apply(name, shape)
        assert record.positions.size == record.num_faulty
        if record.num_faulty:
            assert record.positions.min() >= 0
            assert record.positions.max() < original.size

    def test_only_recorded_positions_change(self, name, shape):
        """The model's write set is exactly its record: every element
        outside ``record.positions`` is bit-identical to the input."""
        original, faulty, record = self._apply(name, shape)
        bits_before = float32_to_bits(to_canonical(original)).reshape(-1)
        bits_after = float32_to_bits(to_canonical(faulty)).reshape(-1)
        untouched = np.ones(original.size, dtype=bool)
        untouched[record.positions] = False
        np.testing.assert_array_equal(bits_after[untouched],
                                      bits_before[untouched])
        # And the recorded faulty values match what landed in the tensor.
        np.testing.assert_array_equal(
            bits_after[record.positions],
            float32_to_bits(record.faulty_values))

    def test_faulty_values_are_float32(self, name, shape):
        _, _, record = self._apply(name, shape)
        assert record.faulty_values.dtype == np.float32
        assert record.original_values.dtype == np.float32


class TestModelContracts:
    """Per-group value contracts beyond the generic write-set property."""

    def test_datapath_flip_is_revertible_bit_exact(self):
        """One datapath fault = one element with one known bit flipped;
        flipping it back restores the original bit pattern."""
        for seed in range(20):
            rng = np.random.default_rng(seed)
            original = rng.standard_normal((8, 8)).astype(np.float32)
            ff = FFDescriptor("datapath", bit=int(rng.integers(0, 32)))
            _, record = model_for_ff(ff).apply(original, rng, ff)
            if record.num_faulty == 0:
                continue
            assert record.num_faulty == 1
            reverted = flip_float32_bit(record.faulty_values, ff.bit)
            np.testing.assert_array_equal(
                float32_to_bits(reverted),
                float32_to_bits(record.original_values))

    def test_group2_outputs_are_zero(self):
        rng = np.random.default_rng(21)
        original = rng.standard_normal((4, 8, 6, 6)).astype(np.float32)
        ff = FFDescriptor("global_control", group=2, has_feedback=True)
        _, record = model_for_ff(ff).apply(original, rng, ff)
        assert record.num_faulty > 0
        assert np.all(record.faulty_values == 0.0)

    def test_group7_attenuates_toward_zero(self):
        """Group 7 loses partial sums: |faulty| <= |original| elementwise,
        and an unknown fan-in means total loss (zeros)."""
        ff = FFDescriptor("global_control", group=7, has_feedback=True)
        rng = np.random.default_rng(22)
        original = rng.standard_normal((16, 32)).astype(np.float32)
        _, record = model_for_ff(ff).apply(original, rng, ff, fan_in=4096)
        assert record.num_faulty > 0
        assert np.all(np.abs(record.faulty_values)
                      <= np.abs(record.original_values))
        rng = np.random.default_rng(22)
        _, record = model_for_ff(ff).apply(original, rng, ff)
        assert np.all(record.faulty_values == 0.0)

    def test_group5_and_9_values_come_from_the_tensor(self):
        """Wrong-address / stale-input models relocate in-distribution
        values: every faulty value already exists in the input tensor."""
        rng = np.random.default_rng(23)
        original = rng.standard_normal((16, 32)).astype(np.float32)
        pool = set(float32_to_bits(original).reshape(-1).tolist())
        for group in (5, 9):
            ff = FFDescriptor("global_control", group=group, has_feedback=True)
            _, record = model_for_ff(ff).apply(
                original, np.random.default_rng(group), ff)
            assert record.num_faulty > 0
            faulty_bits = float32_to_bits(record.faulty_values).tolist()
            assert all(b in pool for b in faulty_bits)

    def test_random_value_groups_span_beyond_the_input_range(self):
        """Groups 1/3 and local control inject random full-range float32
        patterns — with enough draws they must exceed the input's scale."""
        rng = np.random.default_rng(24)
        original = rng.standard_normal((4, 8, 6, 6)).astype(np.float32)
        biggest = 0.0
        for seed in range(10):
            ff = FFDescriptor("global_control", group=1, has_feedback=True)
            _, record = model_for_ff(ff).apply(
                original, np.random.default_rng(seed), ff)
            biggest = max(biggest, record.max_abs_faulty())
        assert biggest > float(np.abs(original).max())
