"""state_dict round-trip property test over the full Table 2 model zoo,
plus the ``load_state_dict`` validation contract."""

import numpy as np
import pytest

from repro import nn
from repro.state import StateArena
from repro.workloads import WORKLOAD_BUILDERS, build_workload


@pytest.mark.parametrize("name", sorted(WORKLOAD_BUILDERS))
class TestRoundTripEveryWorkload:
    """For every registered workload: serialize, perturb, reload, and the
    state (params + extra state like BatchNorm moving stats) must be
    bit-identical to what was saved — with and without an arena bound."""

    def run_round_trip(self, name, use_arena):
        spec = build_workload(name, size="tiny", seed=0)
        model = spec.build_model(seed=0)
        if use_arena:
            arena = StateArena(model)
        # Populate non-trivial extra state (BatchNorm moving statistics)
        # by running a couple of training-mode forward passes.
        x = spec.train_data.inputs[: spec.batch_size]
        model.forward(x)
        model.forward(spec.train_data.inputs[spec.batch_size : 2 * spec.batch_size])

        saved = {k: np.array(v, copy=True) for k, v in model.state_dict().items()}

        # Perturb everything, then reload the saved state.
        for param in model.parameters():
            param.data[...] = param.data + 1.0
        for _mod_name, module in model.named_modules():
            state = module.extra_state()
            if state:
                module.load_extra_state(
                    {k: np.asarray(v) * 0.5 for k, v in state.items()}
                )
        model.load_state_dict({k: np.array(v, copy=True) for k, v in saved.items()})

        restored = model.state_dict()
        assert set(restored) == set(saved)
        for key in saved:
            assert np.array_equal(restored[key], saved[key]), key
        if use_arena:
            # Reload must have written through the fused buffer, not
            # rebound the views away from it.
            for param in model.parameters():
                assert param.data.base is arena.param or param.data is arena.param

    def test_round_trip_plain(self, name):
        self.run_round_trip(name, use_arena=False)

    def test_round_trip_with_arena(self, name):
        self.run_round_trip(name, use_arena=True)


class TestLoadStateDictValidation:
    def build(self):
        rng = np.random.default_rng(0)
        return nn.Sequential(nn.Dense(4, 8, rng), nn.BatchNorm(8), nn.ReLU())

    def test_missing_key_raises(self):
        model = self.build()
        state = model.state_dict()
        state.pop("param:0.weight")
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = self.build()
        state = model.state_dict()
        state["param:9.bogus"] = np.zeros(3, dtype=np.float32)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)

    def test_allow_partial_tolerates_missing(self):
        model = self.build()
        state = model.state_dict()
        weight = np.array(state["param:0.weight"], copy=True) + 2.0
        bias_before = np.array(state["param:0.bias"], copy=True)
        model.load_state_dict(
            {"param:0.weight": weight}, allow_partial=True
        )
        assert np.array_equal(model.state_dict()["param:0.weight"], weight)
        assert np.array_equal(model.state_dict()["param:0.bias"], bias_before)

    def test_allow_partial_still_rejects_unexpected(self):
        model = self.build()
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(
                {"param:9.bogus": np.zeros(3, dtype=np.float32)},
                allow_partial=True,
            )

    def test_shape_mismatch_raises(self):
        model = self.build()
        state = model.state_dict()
        state["param:0.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)
