"""Tests for repro.serving: batcher, fault plane, detection/recovery,
and the HTTP front-end (no pytest-asyncio — coroutines run under
``asyncio.run``)."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.analysis.classify import (
    InferenceOutcome,
    classify_inference_experiment,
    classify_inference_rows,
    inference_breakdown,
)
from repro.observe.export import validate_exposition
from repro.observe.slo import SLORule
from repro.serving import (
    DynamicBatcher,
    InferenceServer,
    InferenceSession,
    ServingEngine,
    ShedError,
)
from repro.serving.loadgen import run_loadgen
from repro.serving.server import run_service
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def session():
    spec = build_workload("resnet", size="tiny", seed=0)
    return InferenceSession(spec, seed=0, train_iterations=6, num_devices=2)


# ----------------------------------------------------------------------
# Outcome taxonomy (shared with InferenceCampaign)
# ----------------------------------------------------------------------
class TestInferenceOutcome:
    def test_row_classification_with_precedence(self):
        golden = np.array([[0.1, 0.9], [0.1, 0.9], [0.1, 0.9], [0.1, 0.9]])
        golden_pred = np.argmax(golden, axis=-1)
        faulty = golden.copy()
        faulty[1] = [0.9, 0.1]            # prediction flips: SDC
        faulty[2, 0] = np.nan             # NaN, argmax unchanged: nonfinite
        faulty[3] = [np.inf, 0.1]         # inf flips argmax: SDC wins
        outcomes = classify_inference_rows(faulty, golden_pred)
        assert outcomes == [
            InferenceOutcome.MASKED, InferenceOutcome.SDC,
            InferenceOutcome.NONFINITE, InferenceOutcome.SDC]

    def test_experiment_level_matches_campaign_strings(self):
        assert classify_inference_experiment(
            sdc=True, nonfinite=True).value == "sdc"
        assert classify_inference_experiment(
            sdc=False, nonfinite=True).value == "nonfinite"
        assert classify_inference_experiment(
            sdc=False, nonfinite=False).value == "masked"

    def test_breakdown_counts_every_key(self):
        counts = inference_breakdown(["sdc", "masked", "masked"])
        assert counts == {"masked": 2, "sdc": 1, "nonfinite": 0}
        assert InferenceOutcome.SDC.is_silent
        assert not InferenceOutcome.NONFINITE.is_silent


# ----------------------------------------------------------------------
# Dynamic batcher (transport- and model-free)
# ----------------------------------------------------------------------
def _echo(payloads):
    return [{"value": p["value"], "batch": len(payloads)} for p in payloads]


class TestDynamicBatcher:
    def test_coalesces_up_to_max_batch(self):
        async def main():
            batcher = DynamicBatcher(_echo, max_batch=4, max_wait_s=0.05)
            # All eight submitted before the collector runs: they must
            # coalesce into full batches of exactly max_batch.
            submits = [asyncio.ensure_future(batcher.submit({"value": i}))
                       for i in range(8)]
            task = asyncio.ensure_future(batcher.run())
            results = await asyncio.gather(*submits)
            batcher.stop()
            await task
            return results, batcher

        results, batcher = asyncio.run(main())
        assert [r["value"] for r in results] == list(range(8))
        assert batcher.batch_sizes == [4, 4]

    def test_max_wait_flushes_part_full_batch(self):
        async def main():
            batcher = DynamicBatcher(_echo, max_batch=64, max_wait_s=0.01)
            task = asyncio.ensure_future(batcher.run())
            loop = asyncio.get_running_loop()
            started = loop.time()
            result = await batcher.submit({"value": 7})
            waited = loop.time() - started
            batcher.stop()
            await task
            return result, waited

        result, waited = asyncio.run(main())
        assert result == {"value": 7, "batch": 1}
        # Released by the max-wait timer, far before any 64-deep batch.
        assert waited < 5.0

    def test_bounded_queue_sheds_under_overload(self):
        async def main():
            batcher = DynamicBatcher(_echo, max_batch=4, max_wait_s=0.01,
                                     queue_cap=2)
            # No collector running: the queue fills at queue_cap and the
            # next submit must shed instead of buffering.
            ok = [asyncio.ensure_future(batcher.submit({"value": i}))
                  for i in range(2)]
            await asyncio.sleep(0)  # let both enqueue up to queue_cap
            with pytest.raises(ShedError):
                await batcher.submit({"value": 99})
            assert batcher.shed == 1
            task = asyncio.ensure_future(batcher.run())
            results = await asyncio.gather(*ok)
            batcher.stop()
            await task
            return results

        results = asyncio.run(main())
        assert [r["value"] for r in results] == [0, 1]

    def test_submit_after_stop_sheds(self):
        async def main():
            batcher = DynamicBatcher(_echo, max_batch=2)
            batcher.stop()
            with pytest.raises(ShedError):
                await batcher.submit({"value": 0})

        asyncio.run(main())

    def test_execute_failure_fails_the_batch_not_the_loop(self):
        calls = {"n": 0}

        def flaky(payloads):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom")
            return _echo(payloads)

        async def main():
            batcher = DynamicBatcher(flaky, max_batch=2, max_wait_s=0.005)
            task = asyncio.ensure_future(batcher.run())
            with pytest.raises(RuntimeError, match="boom"):
                await batcher.submit({"value": 0})
            result = await batcher.submit({"value": 1})
            batcher.stop()
            await task
            return result

        assert asyncio.run(main())["value"] == 1


# ----------------------------------------------------------------------
# Serving engine: zero-fault bit-identity, detection, batch recovery
# ----------------------------------------------------------------------
class TestServingEngine:
    def test_zero_fault_is_bit_identical_to_direct_forward(self, session):
        engine = ServingEngine(session, fault_rate=0.0, max_batch=4)
        responses = engine._execute_batch([{"index": i} for i in range(4)])
        direct = session.forward(session.gather([0, 1, 2, 3]))
        for row, response in enumerate(responses):
            assert response["output"] == direct[row].ravel().tolist()
            assert response["outcome"] is None
            assert not response["recovered"]
        assert engine.c_outcome[InferenceOutcome.SDC].value == 0
        assert engine.c_faults_armed.value == 0

    def test_recovery_re_execution_is_golden_identical(self, session):
        # Always-faulty regime with full shadowing: every corrupted
        # batch must be re-served from its fault-free re-execution.
        engine = ServingEngine(session, fault_rate=5.0, seed=7,
                               max_batch=4, shadow_rate=1.0, recover=True)
        golden = session.forward(session.gather([0, 1, 2, 3]))
        for _ in range(8):
            responses = engine._execute_batch(
                [{"index": i} for i in range(4)])
            for row, response in enumerate(responses):
                assert response["output"] == golden[row].ravel().tolist()
        assert engine.c_faults_fired.value > 0
        assert engine.c_shadow.value == engine.c_batches.value

    def test_no_recover_serves_faulty_outputs(self, session):
        engine = ServingEngine(session, fault_rate=5.0, seed=7,
                               max_batch=4, shadow_rate=1.0, recover=False)
        golden = session.forward(session.gather([0, 1, 2, 3]))
        diverged = False
        for _ in range(8):
            responses = engine._execute_batch(
                [{"index": i} for i in range(4)])
            for row, response in enumerate(responses):
                if response["output"] != golden[row].ravel().tolist():
                    diverged = True
        assert diverged, "faulty outputs never reached responses"
        assert engine.c_recovered.value == 0

    def test_outcome_counters_feed_the_sample(self, session):
        engine = ServingEngine(session, fault_rate=5.0, seed=11,
                               max_batch=4, shadow_rate=1.0)
        for _ in range(6):
            engine._execute_batch([{"index": i} for i in range(4)])
        sample = engine.sample()
        counted = sum(sample.outcomes.values())
        assert counted == 24  # every shadowed row classified
        assert sample.gauges["serving.fault_rate"] == 5.0
        if sample.outcomes["sdc"]:
            assert sample.gauges["serving.sdc_per_million"] > 0


# ----------------------------------------------------------------------
# HTTP front-end + service driver (real sockets, ephemeral ports)
# ----------------------------------------------------------------------
def _get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestInferenceServerHTTP:
    def test_predict_and_telemetry_endpoints(self, session, tmp_path):
        store = tmp_path / "serving.json"
        report = {}

        async def main():
            engine = ServingEngine(session, fault_rate=1.0, seed=5,
                                   max_batch=8, max_wait_s=0.002,
                                   shadow_rate=1.0)
            service = asyncio.ensure_future(run_service(
                engine, port=0, store=store, duration=2.5,
                announce=lambda m: report.setdefault("announce", m)))
            while "announce" not in report:
                await asyncio.sleep(0.01)
            url = report["announce"].split()[3]
            report["loadgen"] = await run_loadgen(url, rps=80, duration=1.0)
            status, metrics = await asyncio.to_thread(_get, url + "/metrics")
            report["metrics"] = (status, metrics)
            report["workload"] = await asyncio.to_thread(
                _get, url + "/workload")
            report["bad"] = await asyncio.to_thread(_get, url + "/nope")
            report["summary"] = await service

        asyncio.run(main())
        load = report["loadgen"]
        assert load["completed"] > 0 and load["errors"] == 0
        assert load["latency_ms"]["p99"] >= load["latency_ms"]["p50"] > 0
        status, metrics = report["metrics"]
        assert status == 200
        parsed = validate_exposition(metrics)
        names = {name for name, _, _ in parsed}
        assert {"repro_serving_requests_total", "repro_serving_shed_total",
                "repro_serving_sdc_total",
                "repro_serving_queue_depth"} <= names
        assert json.loads(report["workload"][1])["workload"] == "resnet"
        assert report["bad"][0] == 404
        summary = report["summary"]
        assert summary["responses"] >= load["completed"]
        assert summary["kind"] == "serving"
        # Store + series artifacts landed.
        assert json.loads(store.read_text())["workload"] == "resnet"
        with open(summary["series_path"], encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["record"] == "header"
        flat_keys = set()
        for line in lines[1:]:
            flat_keys.update(line.get("gauges", {}))
            flat_keys.update(line.get("histograms", {}))
        assert "serving.shed_rate" in flat_keys
        assert "serving.latency_seconds" in flat_keys

    def test_healthz_degrades_under_induced_slo_breach(self, session):
        report = {}
        # An impossible ceiling: any served request breaches immediately.
        rules = [SLORule(name="no-requests",
                         metric="counter.serving.requests", max=0.0,
                         severity="critical")]

        async def main():
            engine = ServingEngine(session, fault_rate=0.0, max_batch=4,
                                   max_wait_s=0.001)
            service = asyncio.ensure_future(run_service(
                engine, port=0, rules=rules, interval=0.05, duration=1.5,
                announce=lambda m: report.setdefault("announce", m)))
            while "announce" not in report:
                await asyncio.sleep(0.01)
            url = report["announce"].split()[3]
            report["healthz_before"] = await asyncio.to_thread(
                _get, url + "/healthz")
            await engine.predict(0)
            await asyncio.sleep(0.3)  # let the sampler observe the breach
            report["healthz"] = await asyncio.to_thread(
                _get, url + "/healthz")
            report["alerts"] = await asyncio.to_thread(
                _get, url + "/alerts")
            report["summary"] = await service

        asyncio.run(main())
        assert report["healthz_before"][0] == 200
        status, body = report["healthz"]
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert "slo:no-requests" in payload["reasons"]
        assert json.loads(report["alerts"][1])["firing"] == ["no-requests"]
        assert report["summary"]["breached_critical"] == ["no-requests"]

    def test_predict_validates_input(self, session):
        report = {}

        async def main():
            engine = ServingEngine(session, max_batch=2, max_wait_s=0.001)
            hub_service = asyncio.ensure_future(run_service(
                engine, port=0, duration=1.0,
                announce=lambda m: report.setdefault("announce", m)))
            while "announce" not in report:
                await asyncio.sleep(0.01)
            url = report["announce"].split()[3]

            def post(body):
                request = urllib.request.Request(
                    url + "/predict", data=body.encode("utf-8"),
                    headers={"Content-Type": "application/json"})
                try:
                    with urllib.request.urlopen(request, timeout=10) as r:
                        return r.status, r.read().decode("utf-8")
                except urllib.error.HTTPError as exc:
                    return exc.code, exc.read().decode("utf-8")

            report["bad_json"] = await asyncio.to_thread(post, "not json")
            report["bad_index"] = await asyncio.to_thread(
                post, json.dumps({"index": 10 ** 9}))
            report["good"] = await asyncio.to_thread(
                post, json.dumps({"index": 0}))
            await hub_service

        asyncio.run(main())
        assert report["bad_json"][0] == 400
        assert report["bad_index"][0] == 400
        status, body = report["good"]
        assert status == 200
        assert json.loads(body)["index"] == 0


# ----------------------------------------------------------------------
# Overload end to end: loadgen far above capacity must shed, not hang
# ----------------------------------------------------------------------
class TestOverload:
    def test_loadgen_observes_shedding(self, session):
        report = {}

        def slow_execute(payloads):
            import time as _time
            _time.sleep(0.05)  # throttle capacity well below the load
            return [{"index": p["index"], "pred": 0, "output": [],
                     "outcome": None, "screened": False, "recovered": False,
                     "batch_size": len(payloads), "faults_fired": 0}
                    for p in payloads]

        async def main():
            engine = ServingEngine(session, max_batch=2, max_wait_s=0.001,
                                   queue_cap=4)
            engine.batcher.execute = slow_execute
            service = asyncio.ensure_future(run_service(
                engine, port=0, duration=2.0, interval=0.05,
                announce=lambda m: report.setdefault("announce", m)))
            while "announce" not in report:
                await asyncio.sleep(0.01)
            url = report["announce"].split()[3]
            report["loadgen"] = await run_loadgen(url, rps=300,
                                                  duration=1.0)
            report["summary"] = await service

        asyncio.run(main())
        load = report["loadgen"]
        assert load["shed"] > 0, "overload never shed"
        assert load["errors"] == 0
        summary = report["summary"]
        assert summary["shed"] == load["shed"]
        assert summary["shed_rate"] > 0
        assert "shed-rate" in summary["breached"]


# ----------------------------------------------------------------------
# The server cooperates with plain threads (CLI smoke path)
# ----------------------------------------------------------------------
class TestThreadedClient:
    def test_scrape_from_foreign_thread_while_serving(self, session):
        report = {"codes": []}
        announce = threading.Event()
        url_box = {}

        async def main():
            engine = ServingEngine(session, max_batch=4, max_wait_s=0.002)

            def on_announce(message):
                url_box["url"] = message.split()[3]
                announce.set()

            await run_service(engine, port=0, duration=1.2,
                              announce=on_announce)

        def scraper():
            announce.wait(timeout=5)
            for _ in range(3):
                status, body = _get(url_box["url"] + "/metrics")
                validate_exposition(body)
                report["codes"].append(status)

        thread = threading.Thread(target=scraper)
        thread.start()
        asyncio.run(main())
        thread.join(timeout=5)
        assert report["codes"] == [200, 200, 200]
