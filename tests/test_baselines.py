"""Tests for the baseline mitigation techniques (Sec. 5.3 / Sec. 6)."""

import numpy as np
import pytest

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults import FaultInjector, HardwareFault, OpSite
from repro.core.mitigation.baselines import (
    ABFTChecker,
    CheckpointRecovery,
    GradientClipper,
    RangerGuard,
)


def forward_fault(iteration=3, seed=3, site="1.conv1"):
    ff = FFDescriptor("global_control", group=1, has_feedback=True)
    return HardwareFault(ff=ff, site=OpSite(site, "forward"),
                         iteration=iteration, device=0, seed=seed)


class TestABFT:
    def test_no_violations_fault_free(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        checker = ABFTChecker()
        trainer.add_hook(checker)
        trainer.train(5)
        assert not checker.fired
        assert checker.checks > 0

    def test_detects_forward_output_corruption(self, make_trainer):
        """ABFT's strength: a corrupted matmul output breaks the checksum
        identity immediately."""
        trainer = make_trainer(num_devices=2, stop_on_nonfinite=False)
        checker = ABFTChecker()
        injector = FaultInjector(forward_fault(iteration=3))
        trainer.add_hook(injector)
        trainer.add_hook(checker)
        trainer.train(5)
        assert injector.fired
        assert checker.fired
        assert checker.fired_at() == 3

    def test_misses_history_only_corruption(self, make_trainer):
        """ABFT's blind spot (why the paper's technique wins): corruption
        of optimizer history values leaves every matmul checksum intact."""
        trainer = make_trainer(num_devices=2)
        checker = ABFTChecker()

        class CorruptHistoryDirectly:
            fired = False

            def after_step(self, tr, iteration):
                if iteration == 3 and not self.fired:
                    self.fired = True
                    tr.optimizer.v[0][:] = 1e20  # faulty second moment

        trainer.add_hook(CorruptHistoryDirectly())
        trainer.add_hook(checker)
        trainer.train(6)
        assert not checker.fired

    def test_detects_nonfinite_weight_grad(self, make_trainer):
        trainer = make_trainer(num_devices=2, stop_on_nonfinite=False)
        checker = ABFTChecker(check_weight_grads=True)

        class PoisonGrad:
            fired = False

            def after_backward(self, tr, iteration):
                if iteration == 2 and not self.fired:
                    self.fired = True
                    next(iter(tr.master.parameters())).grad[:] = np.inf

        trainer.add_hook(PoisonGrad())
        trainer.add_hook(checker)
        trainer.train(4)
        assert checker.fired


class TestRanger:
    def test_profiles_then_flags(self, make_trainer):
        # resnet_nobn: without BatchNorm downstream of the blown-up conv,
        # nothing re-normalizes the huge activations before the guarded
        # ReLU (with BN present, normalization masks them — the paper's
        # Observation 3, covered by test_no_false_positives below).
        trainer = make_trainer(workload="resnet_nobn", num_devices=2,
                               stop_on_nonfinite=False)
        guard = RangerGuard(profile_iterations=5, margin=2.0)
        trainer.add_hook(guard)
        trainer.train(5)  # profiling phase
        assert guard.bounds  # bounds learned

        # Corrupt an activation input hugely: the guard must flag it.
        class BlowUpWeights:
            fired = False

            def before_iteration(self, tr, iteration):
                if iteration == 7 and not self.fired:
                    self.fired = True
                    conv = dict(tr.replicas[0].named_modules())["0.0"]
                    conv.weight.data *= 1e8

        trainer.hooks.insert(0, BlowUpWeights())
        trainer.train(4)
        assert guard.fired
        guard.uninstall()

    def test_no_false_positives_fault_free(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        guard = RangerGuard(profile_iterations=10, margin=3.0)
        trainer.add_hook(guard)
        trainer.train(25)
        assert not guard.fired
        guard.uninstall()

    def test_misses_backward_pass_faults(self, make_trainer):
        """Activation bounds only see the forward pass: a backward-pass
        history-corrupting fault slips through (the paper: only 33.7% of
        latent outcomes detected)."""
        trainer = make_trainer(num_devices=2)
        guard = RangerGuard(profile_iterations=5, margin=2.0)

        class CorruptHistory:
            fired = False

            def after_step(self, tr, iteration):
                if iteration == 8 and not self.fired:
                    self.fired = True
                    tr.optimizer.v[0][:] = 1e19

        trainer.add_hook(guard)
        trainer.add_hook(CorruptHistory())
        trainer.train(12)
        assert not guard.fired
        guard.uninstall()

    def test_clamp_mode(self, make_trainer):
        trainer = make_trainer(workload="resnet_nobn", num_devices=2,
                               stop_on_nonfinite=False)
        guard = RangerGuard(profile_iterations=3, margin=2.0, clamp=True)
        trainer.add_hook(guard)
        trainer.train(3)

        class BlowUp:
            fired = False

            def before_iteration(self, tr, iteration):
                if iteration == 4 and not self.fired:
                    self.fired = True
                    conv = dict(tr.replicas[0].named_modules())["0.0"]
                    conv.weight.data *= 1e8

        trainer.hooks.insert(0, BlowUp())
        trainer.train(3)
        assert guard.fired
        guard.uninstall()


class TestGradientClipper:
    def test_clips_large_gradients(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        clipper = GradientClipper(max_norm=1.0)

        class BigGrad:
            fired = False

            def after_backward(self, tr, iteration):
                if iteration == 2 and not self.fired:
                    self.fired = True
                    next(iter(tr.master.parameters())).grad[:] = 100.0

        # BigGrad must run before the clipper.
        trainer.add_hook(BigGrad())
        trainer.add_hook(clipper)
        trainer.train(4)
        assert 2 in clipper.clip_events

    def test_cannot_protect_history_state(self, make_trainer):
        """The paper's argument against clipping as a mitigation: faults
        on mvar / history values bypass the gradient entirely."""
        from repro.nn.normalization import batchnorm_layers

        trainer = make_trainer(num_devices=2)
        clipper = GradientClipper(max_norm=1.0)
        trainer.add_hook(clipper)

        class CorruptMvar:
            fired = False

            def after_step(self, tr, iteration):
                if iteration == 3 and not self.fired:
                    self.fired = True
                    batchnorm_layers(tr.replicas[0])[0].moving_var[:] = 1e20

        trainer.add_hook(CorruptMvar())
        trainer.train(6)
        # Clipping neither detected nor repaired the corruption.
        assert trainer.mvar_magnitude() >= 1e19

    def test_nonfinite_gradients_zeroed(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        clipper = GradientClipper(max_norm=5.0)

        class NaNGrad:
            fired = False

            def after_backward(self, tr, iteration):
                if iteration == 1 and not self.fired:
                    self.fired = True
                    next(iter(tr.master.parameters())).grad[:] = np.nan

        trainer.add_hook(NaNGrad())
        trainer.add_hook(clipper)
        rec = trainer.train(4)
        assert rec.nonfinite_at is None  # NaN never reached the weights

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            GradientClipper(max_norm=0.0)


class TestCheckpointRecovery:
    def test_recovery_cost_accounting(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        recovery = CheckpointRecovery(iterations_per_epoch=5)
        trainer.add_hook(recovery)
        trainer.train(13)  # checkpoints at 0, 5, 10
        cost = recovery.recover(trainer)
        assert cost.checkpoint_iteration == 10
        assert cost.reexecuted_iterations == 3
        assert trainer.iteration == 10

    def test_cost_ratio(self):
        from repro.core.mitigation.baselines.checkpointing import CheckpointRecoveryCost

        cost = CheckpointRecoveryCost(detected_at=1000, checkpoint_iteration=0,
                                      reexecuted_iterations=1000)
        # The paper's comparison: ~1000-iteration epochs vs 2-iteration
        # re-execution -> up to ~500x.
        assert cost.cost_ratio_vs_reexecution(2) == 500.0

    def test_no_checkpoint_raises(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        recovery = CheckpointRecovery(iterations_per_epoch=100)
        with pytest.raises(RuntimeError):
            recovery.recover(trainer)
