"""Tests for the Sec. 3.2.3 software-vs-RTL validation."""

import numpy as np

from repro.accelerator.rtl import MACArraySimulator, RTLFault
from repro.core.faults.validation import (
    predicted_positions_for,
    run_validation,
)


class TestValidationCampaign:
    def test_all_non_masked_faults_match(self):
        """The paper's validation result: every non-masked RTL fault's
        faulty output elements fall within the software model's predicted
        positions."""
        summary = run_validation(num_experiments=150, seed=0)
        assert summary.total == 150
        assert summary.mismatched == 0
        assert summary.match_rate == 1.0
        # Some faults are masked by hardware, some are not.
        assert 0 < summary.masked < summary.total

    def test_different_geometry(self):
        summary = run_validation(num_experiments=60, m=7, k=130, f=40, seed=1)
        assert summary.mismatched == 0

    def test_cases_recorded(self):
        summary = run_validation(num_experiments=20, seed=2)
        assert len(summary.cases) == 20
        for case in summary.cases:
            assert case.masked == (case.rtl_positions.size == 0)


class TestPredictedPositions:
    def test_acc_prediction_single_lane(self):
        sim = MACArraySimulator()
        m, k, f = 6, 96, 24
        fault = RTLFault("acc", cycle=sim.write_micro_cycle(0, k), index=3, bit=30)
        predicted = predicted_positions_for(fault, sim, m, k, f)
        assert predicted.tolist() == [3]

    def test_out_addr_prediction_covers_alias(self):
        sim = MACArraySimulator()
        m, k, f = 6, 96, 24
        fault = RTLFault("out_addr", cycle=sim.write_micro_cycle(0, k), bit=1)
        predicted = predicted_positions_for(fault, sim, m, k, f)
        # Row 0 lanes and row 2 lanes of tile 0.
        assert set(predicted.tolist()) == set(range(16)) | set(range(2 * f, 2 * f + 16))

    def test_rtl_diff_is_subset_of_prediction(self, rng):
        sim = MACArraySimulator()
        m, k, f = 6, 96, 24
        x = rng.normal(size=(m, k)).astype(np.float32)
        w = rng.normal(0, 0.1, size=(k, f)).astype(np.float32)
        golden = sim.run(x, w)
        for ff, idx, bit in [("a_reg", 5, 14), ("in_valid", 0, 1), ("out_valid", 0, 0)]:
            fault = RTLFault(ff, cycle=1, index=idx, bit=bit)
            faulty = sim.run(x, w, fault)
            diff = sim.diff_positions(golden, faulty)
            predicted = predicted_positions_for(fault, sim, m, k, f)
            assert np.isin(diff, predicted).all()
