"""Tests for the persistent result store (repro.engine.store)."""

import json

import pytest

from repro.engine import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreFormatError,
    StoreSchemaError,
    experiment_key,
    merge_stores,
    read_records,
)


class TestKeys:
    def test_stable_and_order_insensitive(self):
        desc = {"seed": 3, "site": {"module_name": "1.conv1", "kind": "forward"}}
        same = {"site": {"kind": "forward", "module_name": "1.conv1"}, "seed": 3}
        assert experiment_key(0, desc) == experiment_key(0, same)

    def test_index_disambiguates_duplicate_faults(self):
        desc = {"seed": 3}
        assert experiment_key(0, desc) != experiment_key(1, desc)


class TestStoreLifecycle:
    def test_create_append_reload(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ResultStore(path, kind="campaign", meta={"workload": "w"}) as store:
            store.append("k1", {"outcome": "masked"})
            store.append("k2", {"outcome": "sdc"})
        with ResultStore(path, resume=True) as store:
            assert store.completed == {"k1": {"outcome": "masked"},
                                       "k2": {"outcome": "sdc"}}
            assert store.kind == "campaign"
            assert store.meta == {"workload": "w"}
            assert "k1" in store and "k3" not in store

    def test_append_idempotent(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.append("k1", {"outcome": "masked"})
            store.append("k1", {"outcome": "other"})
        records = read_records(path)
        assert len(records) == 2  # header + one experiment
        assert records[1]["payload"] == {"outcome": "masked"}

    def test_refuses_to_clobber_without_resume(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ResultStore(path).close()
        with pytest.raises(FileExistsError, match="resume"):
            ResultStore(path)

    def test_quarantine_round_trips(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.quarantine("bad", "timeout after 5.0s", {"seed": 7})
        with ResultStore(path, resume=True) as store:
            assert store.quarantined == {"bad": "timeout after 5.0s"}
            assert store.quarantine_payloads["bad"] == {"seed": 7}
            assert "bad" in store


class TestSchema:
    def test_header_carries_current_version(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ResultStore(path).close()
        header = read_records(path)[0]
        assert header["schema"] == STORE_SCHEMA_VERSION

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps(
            {"record": "header", "schema": 99, "kind": "campaign"}) + "\n")
        with pytest.raises(StoreSchemaError, match="99"):
            read_records(path)
        with pytest.raises(StoreSchemaError):
            ResultStore(path, resume=True)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps(
            {"record": "experiment", "key": "k", "payload": {}}) + "\n")
        with pytest.raises(StoreFormatError, match="header"):
            read_records(path)


class TestCrashTolerance:
    def test_truncated_trailing_line_ignored(self, tmp_path):
        """A run killed mid-write leaves a partial final line; resume must
        keep everything before it."""
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.append("k1", {"outcome": "masked"})
        with open(path, "a") as fh:
            fh.write('{"record": "experiment", "key": "k2", "payl')
        with ResultStore(path, resume=True) as store:
            assert set(store.completed) == {"k1"}
            # The reopened store stays appendable.
            store.append("k3", {"outcome": "sdc"})

    def test_mid_file_corruption_is_a_hard_error(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.append("k1", {"outcome": "masked"})
        content = path.read_text()
        path.write_text(content.replace('"k1"', '"k1') + "\n")
        with pytest.raises(StoreFormatError, match="corrupt"):
            read_records(path)


class TestMerge:
    def _shard(self, path, keys, quarantined=()):
        with ResultStore(path, kind="campaign", meta={"workload": "w"}) as s:
            for key in keys:
                s.append(key, {"outcome": "masked", "from": path.name})
            for key in quarantined:
                s.quarantine(key, "crash", {"seed": 1})

    def test_merge_dedups_by_key(self, tmp_path):
        self._shard(tmp_path / "a.jsonl", ["k1", "k2"])
        self._shard(tmp_path / "b.jsonl", ["k2", "k3"])
        with merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
                          tmp_path / "out.jsonl") as merged:
            assert sorted(merged.completed) == ["k1", "k2", "k3"]
            # First shard wins for duplicate keys.
            assert merged.completed["k2"]["from"] == "a.jsonl"

    def test_completion_beats_quarantine(self, tmp_path):
        """If any shard finished an experiment another shard quarantined,
        the real result wins."""
        self._shard(tmp_path / "a.jsonl", [], quarantined=["k1"])
        self._shard(tmp_path / "b.jsonl", ["k1"])
        with merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
                          tmp_path / "out.jsonl") as merged:
            assert sorted(merged.completed) == ["k1"]
            assert merged.quarantined == {}

    def test_kind_mismatch_rejected(self, tmp_path):
        ResultStore(tmp_path / "a.jsonl", kind="campaign").close()
        ResultStore(tmp_path / "b.jsonl", kind="inference").close()
        with pytest.raises(ValueError, match="different kinds"):
            merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
                         tmp_path / "out.jsonl")
