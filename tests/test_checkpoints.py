"""Tests for checkpoint capture/restore."""

import numpy as np
import pytest

from repro.training.checkpoints import Checkpoint, CheckpointStore


class TestCheckpoint:
    def test_capture_restore_exact(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        trainer.train(5)
        ckpt = Checkpoint.capture(trainer)
        before = {n: p.data.copy() for n, p in trainer.master.named_parameters()}
        opt_m0 = trainer.optimizer.m[0].copy()
        trainer.train(5)
        ckpt.restore(trainer)
        assert trainer.iteration == 5
        for n, p in trainer.master.named_parameters():
            assert np.array_equal(p.data, before[n])
        assert np.array_equal(trainer.optimizer.m[0], opt_m0)

    def test_restore_resumes_identically(self, make_trainer):
        """Training from a restored checkpoint replays the exact same
        trajectory (deterministic loader + reseeded random layers)."""
        trainer = make_trainer(num_devices=2)
        trainer.train(4)
        ckpt = Checkpoint.capture(trainer)
        trainer.train(3)
        after_first = {n: p.data.copy() for n, p in trainer.master.named_parameters()}
        ckpt.restore(trainer)
        trainer.record.truncate_to(4)
        trainer.train(3)
        for n, p in trainer.master.named_parameters():
            assert np.array_equal(p.data, after_first[n])

    def test_replica_count_mismatch(self, make_trainer):
        t2 = make_trainer(num_devices=2)
        t3 = make_trainer(num_devices=3)
        t2.train(1)
        ckpt = Checkpoint.capture(t2)
        with pytest.raises(ValueError):
            ckpt.restore(t3)

    def test_nbytes_positive(self, make_trainer):
        trainer = make_trainer()
        trainer.train(1)
        assert Checkpoint.capture(trainer).nbytes() > 1000


class TestCheckpointStore:
    def test_captures_on_boundaries(self, make_trainer):
        trainer = make_trainer()
        store = CheckpointStore(every=3, keep=10)
        trainer.add_hook(store)
        trainer.train(7)
        assert [c.iteration for c in store.checkpoints] == [0, 3, 6]

    def test_keep_limit(self, make_trainer):
        trainer = make_trainer()
        store = CheckpointStore(every=2, keep=2)
        trainer.add_hook(store)
        trainer.train(9)
        assert len(store.checkpoints) == 2
        assert store.checkpoints[-1].iteration == 8

    def test_latest_before(self, make_trainer):
        trainer = make_trainer()
        store = CheckpointStore(every=3, keep=10)
        trainer.add_hook(store)
        trainer.train(8)
        assert store.latest_before(7).iteration == 6
        assert store.latest_before(6).iteration == 3
        assert store.latest_before(0) is None

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CheckpointStore(every=0)

    def test_capture_time_accounted(self, make_trainer):
        trainer = make_trainer()
        store = CheckpointStore(every=1)
        trainer.add_hook(store)
        trainer.train(3)
        assert store.capture_seconds > 0
