"""Tests for the experiment-batched backend (repro.backend.batched).

Covers the bit-identity contract (batch == solo in-process, per field),
the cross-experiment isolation property (a fault injected into
experiment i never touches a byte of experiment j != i, for every
Table 1 fault kind including comm), rollback isolation (Algorithm 1
re-execution inside a batch leaves batch-mates bit-identical), the
engine's E-sized block leases, the vectorized outcome classifier, and
the backend registry the CLI help is generated from.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    BACKEND_REGISTRY,
    BatchedBackend,
    LaneGroup,
    backend_choices_help,
    run_lockstep,
)
from repro.core.analysis.classify import (
    Outcome,
    classify_outcome,
    classify_outcomes,
)
from repro.core.faults import Campaign
from repro.core.faults.comm import CommFaultInjector
from repro.core.faults.hardware import sample_fault
from repro.core.faults.injector import FaultInjector
from repro.core.mitigation.detector import HardwareFailureDetector
from repro.core.mitigation.recovery import MitigationHook
from repro.distributed import SyncDataParallelTrainer
from repro.engine import CampaignEngine, EngineConfig, WorkUnit
from repro.training.checkpoints import Checkpoint
from repro.training.metrics import ConvergenceRecord
from repro.workloads import build_workload

DEVICES = 2
WARMUP = 6
HORIZON = 8


def _spec():
    return build_workload("resnet", size="tiny", seed=0)


def _hex(values) -> list:
    return [None if v is None else float(v).hex() for v in values]


def _record_fields(record) -> dict:
    return {
        "loss": _hex(record.train_loss),
        "acc": _hex(record.train_acc),
        "hist": _hex(record.history_magnitude),
        "mvar": _hex(record.mvar_magnitude),
        "test": _hex(record.test_acc),
        "nonfinite_at": record.nonfinite_at,
        "detections": list(record.detections),
        "recoveries": list(record.recoveries),
    }


def _param_bytes(trainer) -> bytes:
    return b"".join(arena.param.tobytes() for arena in trainer.arenas)


@pytest.fixture(scope="module")
def warm_checkpoint():
    """A shared warmed-up baseline every differential test restores from,
    so solo and batched runs start from identical bytes with identical
    (fresh) records."""
    trainer = SyncDataParallelTrainer(_spec(), num_devices=DEVICES, seed=0,
                                      test_every=4)
    trainer.train(WARMUP)
    snap = Checkpoint.capture(trainer)
    trainer.close()
    return snap


def _solo_run(warm_checkpoint, hooks=None, budget=HORIZON):
    trainer = SyncDataParallelTrainer(_spec(), num_devices=DEVICES, seed=0,
                                      test_every=4)
    warm_checkpoint.restore(trainer)
    for hook in hooks or []:
        trainer.add_hook(hook)
    try:
        trainer.train(budget)
    finally:
        trainer.close()
    return trainer


def _batched_runs(warm_checkpoint, hooks_per_exp, budget=HORIZON):
    """Run ``len(hooks_per_exp)`` experiments through one LaneGroup; each
    entry is the hook list for that experiment.  Returns the trainers
    (closed) after ``run_lockstep``."""
    group = LaneGroup(capacity=len(hooks_per_exp))
    trainers = []
    for hooks in hooks_per_exp:
        trainer = SyncDataParallelTrainer(
            _spec(), num_devices=DEVICES, seed=0, test_every=4,
            backend=BatchedBackend(group=group))
        warm_checkpoint.restore(trainer)
        for hook in hooks:
            trainer.add_hook(hook)
        trainers.append(trainer)
    assert group.vectorized, "tiny resnet must compile to the fast path"
    try:
        run_lockstep(group, trainers, [budget] * len(trainers))
    finally:
        for trainer in trainers:
            trainer.close()
    return group, trainers


def _site_fault(site_kind: str, seed: int = 0):
    spec = _spec()
    model = spec.build_model(seed=0)
    rng = np.random.default_rng(seed)
    fault = sample_fault(model, rng, max_iteration=1, num_devices=DEVICES,
                         kinds=(site_kind,))
    fault.iteration = WARMUP + 2
    fault.device = 0
    return fault


# ----------------------------------------------------------------------
# Bit-identity: each batched experiment == the same experiment solo
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_plain_batch_matches_solo(self, warm_checkpoint):
        group, trainers = _batched_runs(warm_checkpoint, [[], [], []])
        solo = _solo_run(warm_checkpoint)
        want = _record_fields(solo.record)
        for trainer in trainers:
            assert _record_fields(trainer.record) == want
            assert _param_bytes(trainer) == _param_bytes(solo)

    def test_faulty_batch_matches_solo(self, warm_checkpoint):
        fault = _site_fault("weight_grad", seed=3)
        solo_inj = FaultInjector(fault)
        solo = _solo_run(warm_checkpoint, hooks=[solo_inj])
        batch_inj = FaultInjector(fault)
        group, trainers = _batched_runs(
            warm_checkpoint, [[], [batch_inj], []])
        assert batch_inj.fired and solo_inj.fired
        assert _record_fields(trainers[1].record) == _record_fields(solo.record)
        assert _param_bytes(trainers[1]) == _param_bytes(solo)


# ----------------------------------------------------------------------
# Isolation property: a fault in experiment i leaves every byte of
# j != i untouched — all Table 1 site kinds plus comm
# ----------------------------------------------------------------------
class TestCrossExperimentIsolation:
    @pytest.mark.parametrize("kind", ["forward", "weight_grad", "input_grad"])
    def test_site_fault_isolated(self, warm_checkpoint, kind):
        injector = FaultInjector(_site_fault(kind, seed=1))
        self._assert_bystanders_untouched(warm_checkpoint, injector)
        assert injector.fired

    def test_comm_fault_isolated(self, warm_checkpoint):
        spec = _spec()
        model = spec.build_model(seed=0)
        fault = sample_fault(model, np.random.default_rng(2), max_iteration=1,
                             num_devices=DEVICES, kinds=("comm",))
        fault.iteration = WARMUP + 2
        injector = CommFaultInjector(fault)
        self._assert_bystanders_untouched(warm_checkpoint, injector)
        assert injector.fired

    @staticmethod
    def _assert_bystanders_untouched(warm_checkpoint, injector):
        control_group, control = _batched_runs(warm_checkpoint, [[], [], []])
        faulty_group, faulty = _batched_runs(
            warm_checkpoint, [[], [injector], []])
        # Arena-level memcmp: the bystander experiments' stacked state is
        # byte-for-byte what it is in an all-clean batch.
        for exp in (0, 2):
            rows = faulty_group.stacks.experiment_rows(exp)
            assert (faulty_group.stacks.param[rows].tobytes()
                    == control_group.stacks.param[rows].tobytes())
            for slot in faulty_group.stacks.opt:
                assert (faulty_group.stacks.opt[slot][exp].tobytes()
                        == control_group.stacks.opt[slot][exp].tobytes())
            assert (_record_fields(faulty[exp].record)
                    == _record_fields(control[exp].record))


# ----------------------------------------------------------------------
# Rollback isolation: Algorithm 1 re-execution inside a batch must not
# perturb batch-mates (differential golden-trace check)
# ----------------------------------------------------------------------
class TestRollbackIsolation:
    def test_mitigated_experiment_does_not_perturb_batch_mates(
            self, warm_checkpoint):
        fault = _site_fault("weight_grad", seed=7)
        hooks = [FaultInjector(fault),
                 MitigationHook(HardwareFailureDetector())]
        group, trainers = _batched_runs(warm_checkpoint, [[], hooks, []])
        solo_plain = _solo_run(warm_checkpoint)
        want = _record_fields(solo_plain.record)
        for exp in (0, 2):
            assert _record_fields(trainers[exp].record) == want
            assert _param_bytes(trainers[exp]) == _param_bytes(solo_plain)

    def test_mitigated_experiment_matches_solo_mitigated(
            self, warm_checkpoint):
        fault = _site_fault("weight_grad", seed=7)
        solo = _solo_run(warm_checkpoint, hooks=[
            FaultInjector(fault), MitigationHook(HardwareFailureDetector())])
        group, trainers = _batched_runs(warm_checkpoint, [
            [], [FaultInjector(fault),
                 MitigationHook(HardwareFailureDetector())], []])
        assert (_record_fields(trainers[1].record)
                == _record_fields(solo.record))
        assert _param_bytes(trainers[1]) == _param_bytes(solo)


# ----------------------------------------------------------------------
# Campaign integration: run_experiment_batch == run_experiment per fault
# ----------------------------------------------------------------------
class TestCampaignBatch:
    @pytest.fixture(scope="class")
    def campaigns(self):
        kwargs = dict(num_devices=DEVICES, seed=0, warmup_iterations=WARMUP,
                      horizon=HORIZON, inject_window=4, test_every=4,
                      keep_records=True, detect=True)
        solo = Campaign(_spec(), **kwargs)
        solo.prepare()
        batched = Campaign(_spec(), backend="batched", experiment_batch=3,
                           **kwargs)
        batched.prepare()
        return solo, batched

    def test_batch_results_match_solo(self, campaigns):
        solo, batched = campaigns
        faults = solo.sample_faults(3, seed=11)
        want = [solo.run_experiment(fault) for fault in faults]
        got = batched.run_experiment_batch(faults)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            assert a.report.outcome == b.report.outcome
            assert float(a.report.final_train_delta).hex() == \
                float(b.report.final_train_delta).hex()
            assert a.num_faulty_elements == b.num_faulty_elements
            assert float(a.max_abs_faulty).hex() == float(b.max_abs_faulty).hex()
            assert a.condition_window == b.condition_window
            assert _record_fields(a.record) == _record_fields(b.record)

    def test_run_chunks_by_experiment_batch(self, campaigns):
        _, batched = campaigns
        result = batched.run(num_experiments=5, seed=13)
        assert result.num_experiments == 5
        assert all(isinstance(r.outcome, Outcome) for r in result.results)

    def test_batch_requires_batched_backend(self):
        with pytest.raises(ValueError, match="requires backend='batched'"):
            Campaign(_spec(), experiment_batch=2)

    def test_single_fault_batch_delegates(self, campaigns):
        solo, batched = campaigns
        fault = solo.sample_faults(1, seed=17)[0]
        (got,) = batched.run_experiment_batch([fault])
        want = solo.run_experiment(fault)
        assert got.report.outcome == want.report.outcome
        assert _record_fields(got.record) == _record_fields(want.record)


# ----------------------------------------------------------------------
# Engine block leases
# ----------------------------------------------------------------------
def _block_factory():
    def run_one(payload):
        if payload.get("fail"):
            raise RuntimeError("deliberate unit failure")
        return {"value": payload["x"] * 2, "outcome": "ok"}

    def run(payload):
        if isinstance(payload, list):
            if any(p.get("fail_in_block") for p in payload) and len(payload) > 1:
                raise RuntimeError("deliberate block failure")
            return [run_one(p) for p in payload]
        return run_one(payload)

    return run


def _units(payloads):
    return [WorkUnit(key=f"key{i}", payload={"key": f"key{i}", "x": i, **p})
            for i, p in enumerate(payloads)]


class TestBlockLeases:
    def test_serial_blocks_match_unblocked(self):
        units = _units([{} for _ in range(7)])
        plain = CampaignEngine(_block_factory, EngineConfig(parallel=1)).run(units)
        blocked = CampaignEngine(
            _block_factory, EngineConfig(parallel=1, block_size=3)).run(units)
        assert blocked.results == plain.results
        assert blocked.executed == 7

    def test_parallel_blocks_match_unblocked(self):
        units = _units([{} for _ in range(8)])
        plain = CampaignEngine(_block_factory, EngineConfig(parallel=1)).run(units)
        blocked = CampaignEngine(
            _block_factory,
            EngineConfig(parallel=2, block_size=2, poll_interval=0.02),
        ).run(units)
        assert blocked.results == plain.results

    def test_failed_block_retries_units_solo(self):
        # One poisoned unit fails any multi-unit block it lands in; the
        # whole block fails and every unit is then re-leased solo, where
        # all of them (including the poison) succeed.
        units = _units([{}, {"fail_in_block": True}, {}, {}])
        report = CampaignEngine(
            _block_factory,
            EngineConfig(parallel=1, block_size=4, max_retries=1,
                         retry_backoff=0.01),
        ).run(units)
        assert sorted(report.results) == ["key0", "key1", "key2", "key3"]
        assert report.quarantined == {}
        assert report.retries == 4

    def test_hard_failure_quarantines_only_its_unit(self):
        units = _units([{}, {"fail": True}, {}])
        report = CampaignEngine(
            _block_factory,
            EngineConfig(parallel=1, block_size=3, max_retries=1,
                         retry_backoff=0.01),
        ).run(units)
        assert sorted(report.results) == ["key0", "key2"]
        assert list(report.quarantined) == ["key1"]
        assert "deliberate unit failure" in report.quarantined["key1"]


# ----------------------------------------------------------------------
# Vectorized classifier
# ----------------------------------------------------------------------
def _make_record(train_acc, test_acc=None, nonfinite_at=None):
    rec = ConvergenceRecord()
    for i, acc in enumerate(train_acc):
        rec.record_train(i, 1.0 - acc, acc)
    if test_acc is not None:
        for i, acc in enumerate(test_acc):
            rec.record_test(i * 10, acc)
    if nonfinite_at is not None:
        rec.nonfinite_at = nonfinite_at
    return rec


class TestClassifyOutcomes:
    def test_matches_scalar_classifier(self):
        reference = _make_record(
            np.concatenate([np.linspace(0.2, 0.95, 50), np.full(100, 0.95)]),
            test_acc=np.full(15, 0.9))
        t = 60
        records = [
            _make_record(np.full(61, 0.9), nonfinite_at=t),          # immediate
            _make_record(np.full(63, 0.9), nonfinite_at=t + 2),      # short-term
            _make_record(np.full(100, 0.9), nonfinite_at=t + 30),    # latent
            _make_record(reference.train_acc, test_acc=np.full(15, 0.9)),
            _make_record(np.concatenate([np.linspace(0.2, 0.95, 50),
                                         np.full(50, 0.95),
                                         np.linspace(0.95, 0.5, 50)])),
        ]
        batched = classify_outcomes(records, reference, [t] * len(records))
        for record, report in zip(records, batched):
            want = classify_outcome(record, reference, t)
            assert report.outcome == want.outcome
            assert report.injection_iteration == want.injection_iteration
            assert report.final_train_delta == want.final_train_delta
            assert report.details == want.details

    def test_empty_batch(self):
        assert classify_outcomes([], _make_record([0.5]), []) == []


# ----------------------------------------------------------------------
# Backend registry / CLI help consistency
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_registry_covers_every_backend(self):
        assert tuple(BACKEND_REGISTRY) == BACKEND_NAMES
        assert "batched" in BACKEND_NAMES

    def test_help_text_generated_from_registry(self):
        text = backend_choices_help()
        for name, info in BACKEND_REGISTRY.items():
            assert name in text
            assert info.summary in text
            assert info.tradeoff in text

    def test_cli_backend_help_lists_every_backend(self):
        from repro.cli import build_parser

        parser = build_parser()
        text = parser.format_help()
        # Subcommand help strings live on the subparsers.
        import argparse
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    text += sub.format_help()
        for name in BACKEND_NAMES:
            assert name in text

    def test_cli_rejects_batch_without_batched_backend(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["campaign", "--workload", "resnet", "--experiments", "1",
                  "--experiment-batch", "4"])
        assert exc.value.code == 2
