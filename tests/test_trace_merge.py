"""Tests for the campaign flight recorder's shard merge (repro.observe.merge)."""

import json

import pytest

from repro.engine import CampaignEngine, EngineConfig, ResultStore, WorkUnit
from repro.observe import (
    EXPERIMENT_FINISHED,
    EXPERIMENT_STARTED,
    ITERATION_STATS,
    Tracer,
    campaign_trace_path,
    merge_campaign_shards,
    merge_traces,
    read_trace,
    shard_path,
)
from repro.engine.worker import UnitCapture


def _write_shard(path, worker_id, units, finish=True):
    """Stream a shard: each unit is (key, iterations[, outcome])."""
    with Tracer(stream=path, meta={"worker": worker_id}) as tracer:
        capture = UnitCapture(tracer, worker_id)
        for unit in units:
            key, iterations = unit[0], unit[1]
            outcome = unit[2] if len(unit) > 2 else "ok"
            capture.start(key)
            for it in iterations:
                tracer.emit(ITERATION_STATS, iteration=it, loss=0.1 * it,
                            history_magnitude=1.0, mvar_magnitude=0.5)
            if finish:
                capture.done({"outcome": outcome})
    return path


class TestMergeOrdering:
    def test_merge_orders_by_shard_then_first_seen(self, tmp_path):
        _write_shard(shard_path(tmp_path, 0), 0, [("key0", [0, 1]),
                                                  ("key2", [0, 1])])
        _write_shard(shard_path(tmp_path, 1), 1, [("key1", [0, 1]),
                                                  ("key3", [0, 1])])
        dest = tmp_path / "merged.jsonl"
        result = merge_traces([shard_path(tmp_path, 0),
                               shard_path(tmp_path, 1)], dest)
        assert result.experiments == 4
        assert result.unkeyed_dropped == 0
        assert result.incomplete == []
        trace = read_trace(dest)
        keys = []
        for event in trace.events:
            if event.data["key"] not in keys:
                keys.append(event.data["key"])
        assert keys == ["key0", "key2", "key1", "key3"]
        # The merged trace is re-sequenced and each key's events stay
        # contiguous and internally ordered.
        assert [e.seq for e in trace.events] == list(range(len(trace.events)))
        for key in keys:
            events = [e for e in trace.events if e.data["key"] == key]
            assert events[0].type == EXPERIMENT_STARTED
            assert events[-1].type == EXPERIMENT_FINISHED
            iters = [e.iteration for e in events
                     if e.type == ITERATION_STATS]
            assert iters == sorted(iters)

    def test_merged_trace_is_schema_valid(self, tmp_path):
        _write_shard(shard_path(tmp_path, 0), 0, [("key0", [0])])
        dest = tmp_path / "merged.jsonl"
        merge_traces([shard_path(tmp_path, 0)], dest)
        trace = read_trace(dest)  # raises on schema violation
        assert not trace.truncated
        assert trace.meta["experiments"] == 1


class TestDedup:
    def test_restarted_worker_dedups_to_completed_attempt(self, tmp_path):
        # Worker 0 was killed mid-experiment: started key0, never finished.
        _write_shard(shard_path(tmp_path, 0), 0, [("key0", [0, 1])],
                     finish=False)
        # The respawned worker (new id) re-ran key0 to completion.
        _write_shard(shard_path(tmp_path, 1), 1, [("key0", [0, 1, 2])])
        dest = tmp_path / "merged.jsonl"
        result = merge_traces([shard_path(tmp_path, 0),
                               shard_path(tmp_path, 1)], dest)
        assert result.experiments == 1
        assert result.incomplete == []
        trace = read_trace(dest)
        started = [e for e in trace.events if e.type == EXPERIMENT_STARTED]
        assert len(started) == 1  # exactly one surviving attempt
        assert started[0].data["worker"] == 1
        finished = [e for e in trace.events if e.type == EXPERIMENT_FINISHED]
        assert len(finished) == 1
        assert finished[0].data["status"] == "done"

    def test_retry_within_one_shard_keeps_first_complete_attempt(self, tmp_path):
        path = shard_path(tmp_path, 0)
        with Tracer(stream=path) as tracer:
            capture = UnitCapture(tracer, 0)
            capture.start("key0")  # attempt 0: failed
            tracer.emit(ITERATION_STATS, iteration=0, loss=1.0)
            capture.error("RuntimeError: flaky")
            capture.start("key0")  # attempt 1: succeeded
            tracer.emit(ITERATION_STATS, iteration=0, loss=0.5)
            capture.done({"outcome": "ok"})
        dest = tmp_path / "merged.jsonl"
        merge_traces([path], dest)
        trace = read_trace(dest)
        finished = [e for e in trace.events if e.type == EXPERIMENT_FINISHED]
        assert len(finished) == 1
        assert finished[0].data["status"] == "done"
        assert finished[0].data["attempt"] == 1

    def test_never_finished_unit_survives_as_incomplete(self, tmp_path):
        _write_shard(shard_path(tmp_path, 0), 0, [("key0", [0, 1])],
                     finish=False)
        dest = tmp_path / "merged.jsonl"
        result = merge_traces([shard_path(tmp_path, 0)], dest)
        assert result.incomplete == ["key0"]
        trace = read_trace(dest)
        assert [e.type for e in trace.events] == \
            [EXPERIMENT_STARTED, ITERATION_STATS, ITERATION_STATS]


class TestCrashArtifacts:
    def test_truncated_final_line_is_recovered_around(self, tmp_path):
        path = _write_shard(shard_path(tmp_path, 0), 0,
                            [("key0", [0, 1]), ("key1", [0, 1])])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"record":"event","type":"iteration_st')  # killed mid-write
        dest = tmp_path / "merged.jsonl"
        result = merge_traces([path], dest)
        assert result.experiments == 2
        trace = read_trace(dest)
        assert not trace.truncated  # the merged trace itself is clean
        assert len(trace.events) == result.events

    def test_shard_with_cut_header_is_skipped(self, tmp_path):
        good = _write_shard(shard_path(tmp_path, 0), 0, [("key0", [0])])
        bad = shard_path(tmp_path, 1)
        bad.write_text('{"record":"hea', encoding="utf-8")
        dest = tmp_path / "merged.jsonl"
        result = merge_traces([good, bad], dest)
        assert result.skipped_sources == [bad]
        assert result.experiments == 1

    def test_unkeyed_events_are_dropped_and_counted(self, tmp_path):
        path = shard_path(tmp_path, 0)
        with Tracer(stream=path) as tracer:
            tracer.emit(ITERATION_STATS, iteration=0, loss=1.0)  # no context
            capture = UnitCapture(tracer, 0)
            capture.start("key0")
            tracer.emit(ITERATION_STATS, iteration=0, loss=0.5)
            capture.done({"outcome": "ok"})
        dest = tmp_path / "merged.jsonl"
        result = merge_traces([path], dest)
        assert result.unkeyed_dropped == 1
        assert result.experiments == 1


class TestCampaignShards:
    def test_merge_folds_shards_and_removes_them(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        store_path.write_text("", encoding="utf-8")
        _write_shard(shard_path(tmp_path, 0), 0, [("key0", [0])])
        _write_shard(shard_path(tmp_path, 1), 1, [("key1", [0])])
        result = merge_campaign_shards(store_path)
        assert result.dest == campaign_trace_path(store_path)
        assert result.experiments == 2
        assert not shard_path(tmp_path, 0).exists()
        assert not shard_path(tmp_path, 1).exists()

    def test_merge_is_idempotent_across_resume_sessions(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        _write_shard(shard_path(tmp_path, 0), 0, [("key0", [0, 1])])
        merge_campaign_shards(store_path)
        first = campaign_trace_path(store_path).read_text(encoding="utf-8")
        # A resume session adds a new shard; the existing trace is re-fed
        # as the first source, so key0's story is preserved verbatim.
        _write_shard(shard_path(tmp_path, 0), 0, [("key1", [0])])
        merge_campaign_shards(store_path)
        second = campaign_trace_path(store_path).read_text(encoding="utf-8")
        first_events = [json.loads(line) for line in
                        first.splitlines()[1:]]
        second_events = [json.loads(line) for line in
                         second.splitlines()[1:]]
        assert second_events[:len(first_events)] == first_events
        assert {e["data"]["key"] for e in second_events} == {"key0", "key1"}
        # Re-merging with no new shards is a no-op on the event stream
        # (only the header's source accounting may differ).
        merge_campaign_shards(store_path)
        third = campaign_trace_path(store_path).read_text(encoding="utf-8")
        assert third.splitlines()[1:] == second.splitlines()[1:]

    def test_nothing_to_merge_returns_none(self, tmp_path):
        assert merge_campaign_shards(tmp_path / "results.jsonl") is None


# ----------------------------------------------------------------------
# Engine integration: the toy runner, traced end to end.
# ----------------------------------------------------------------------
def _toy_factory():
    def run(payload):
        if payload.get("fail"):
            raise RuntimeError("deliberate failure")
        return {"value": payload["x"] * 2, "outcome": "ok"}

    return run


def _units(n, **extra):
    return [WorkUnit(key=f"key{i}", payload={"key": f"key{i}", "x": i, **extra})
            for i in range(n)]


class TestEngineTracing:
    def test_trace_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            CampaignEngine(_toy_factory,
                           EngineConfig(parallel=1, trace=True)).run(_units(1))

    @pytest.mark.parametrize("parallel", [1, 2])
    def test_traced_run_produces_merged_campaign_trace(self, tmp_path, parallel):
        store = ResultStore(tmp_path / "s.jsonl", kind="toy")
        report = CampaignEngine(
            _toy_factory, EngineConfig(parallel=parallel, trace=True),
            store=store).run(_units(4))
        store.close()
        assert report.trace_path == campaign_trace_path(tmp_path / "s.jsonl")
        trace = read_trace(report.trace_path)
        counts = trace.type_counts()
        assert counts[EXPERIMENT_STARTED] == 4
        assert counts[EXPERIMENT_FINISHED] == 4
        keys = {e.data["key"] for e in trace.events}
        assert keys == {"key0", "key1", "key2", "key3"}
        # Shards were consumed by the merge.
        assert not list(tmp_path.glob("trace-worker*.jsonl"))

    def test_quarantined_unit_keeps_error_story(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl", kind="toy")
        report = CampaignEngine(
            _toy_factory,
            EngineConfig(parallel=1, trace=True, max_retries=0),
            store=store).run(_units(2) + [
                WorkUnit(key="bad", payload={"key": "bad", "x": 0,
                                             "fail": True})])
        store.close()
        assert list(report.quarantined) == ["bad"]
        trace = read_trace(report.trace_path)
        finished = {e.data["key"]: e.data for e in trace.events
                    if e.type == EXPERIMENT_FINISHED}
        assert finished["bad"]["status"] == "error"
        assert "deliberate failure" in finished["bad"]["error"]
        assert finished["key0"]["status"] == "done"
