"""Tests for phase decomposition (Fig. 5), propagation tracing (Fig. 4 /
Table 4), and campaign statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.phases import decompose_phases, expected_stagnation_iterations
from repro.core.analysis.propagation import PropagationTracer
from repro.core.analysis.stats import (
    experiments_for_interval,
    unobserved_outcome_bound,
    wilson_interval,
)


class TestPhaseDecomposition:
    def _three_phase_curve(self):
        return np.concatenate([
            np.full(50, 0.9),             # pre-fault
            np.linspace(0.9, 0.3, 20),    # phase 1: degrade
            np.full(60, 0.3),             # phase 2: stagnate
            np.linspace(0.3, 0.88, 30),   # phase 3: recover
            np.full(10, 0.89),
        ])

    def test_detects_three_phases(self):
        analysis = decompose_phases(self._three_phase_curve(), 50, reference_level=0.9)
        assert analysis.has_three_phases
        assert analysis.recovered
        d, s, r = analysis.degrade_span, analysis.stagnation_span, analysis.recovery_span
        assert d[0] == 50
        assert d[1] <= s[0] + 1
        assert s[1] == r[0]

    def test_no_recovery(self):
        curve = np.concatenate([
            np.full(50, 0.9), np.linspace(0.9, 0.3, 20), np.full(100, 0.3)
        ])
        analysis = decompose_phases(curve, 50, reference_level=0.9)
        assert analysis.degrade_span is not None
        assert analysis.stagnation_span is not None
        assert analysis.recovery_span is None
        assert not analysis.recovered

    def test_never_degraded(self):
        curve = np.full(100, 0.9)
        analysis = decompose_phases(curve, 50, reference_level=0.9)
        assert analysis.recovered
        assert analysis.degrade_span is None

    def test_short_trace(self):
        analysis = decompose_phases(np.full(52, 0.9), 50, reference_level=0.9)
        assert analysis.details["reason"] == "trace too short"


class TestStagnationMath:
    def test_paper_example(self):
        """Decay 0.9999 with a 1e19 faulty value: ~4.4e5 iterations to
        decay below O(1) — "may require millions of iterations"."""
        iters = expected_stagnation_iterations(1e19, 0.9999)
        assert 3e5 < iters < 6e5

    def test_faster_decay_recovers_sooner(self):
        slow = expected_stagnation_iterations(1e10, 0.999)
        fast = expected_stagnation_iterations(1e10, 0.9)
        assert fast < slow

    def test_no_stagnation_below_normal(self):
        assert expected_stagnation_iterations(0.5, 0.999) == 0.0

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            expected_stagnation_iterations(1e10, 1.0)


class TestPropagationTracer:
    def test_records_magnitudes(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        tracer = PropagationTracer()
        trainer.add_hook(tracer)
        trainer.train(5)
        arrays = tracer.trace.as_arrays()
        assert arrays["iterations"].tolist() == [0, 1, 2, 3, 4]
        assert np.all(arrays["max_weight"] > 0)
        assert np.all(arrays["max_history"] > 0)  # Adam history present
        assert np.all(arrays["max_mvar"] > 0)     # BatchNorm present

    def test_condition_onset_detection(self, make_trainer):
        from repro.accelerator.ffs import FFDescriptor
        from repro.core.faults import FaultInjector, HardwareFault, OpSite

        trainer = make_trainer(num_devices=2)
        tracer = PropagationTracer()
        ff = FFDescriptor("global_control", group=1, has_feedback=True)
        fault = HardwareFault(ff=ff, site=OpSite("1.conv1", "weight_grad"),
                              iteration=5, device=1, seed=3)
        trainer.add_hook(FaultInjector(fault))
        trainer.add_hook(tracer)
        trainer.train(10)
        onsets = tracer.condition_onsets(fault_iteration=5)
        history = [o for o in onsets if o.condition == "gradient_history"]
        assert history
        # The paper's key claim: conditions appear within 2 iterations.
        assert history[0].latency_from_fault <= 2

    def test_window_magnitudes(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        tracer = PropagationTracer()
        trainer.add_hook(tracer)
        trainer.train(6)
        window = tracer.condition_magnitude_in_window(2, window=2)
        assert set(window) == {"max_history", "max_mvar"}
        assert window["max_history"] > 0


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        est = wilson_interval(30, 100)
        assert est.low <= est.point <= est.high
        assert est.point == pytest.approx(0.3)

    @given(st.integers(1, 1000), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_bounds_valid(self, trials, successes):
        if successes > trials:
            return
        est = wilson_interval(successes, trials)
        assert 0.0 <= est.low <= est.high <= 1.0

    def test_interval_shrinks_with_trials(self):
        small = wilson_interval(10, 100)
        large = wilson_interval(1000, 10_000)
        assert large.half_width < small.half_width

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestUnobservedBound:
    def test_paper_scale(self):
        """At the paper's 2.9M experiments the bound is < 0.004% at 99.5%
        confidence — exactly what Sec. 4.1 claims."""
        assert unobserved_outcome_bound(2_900_000, 0.995) < 4e-5

    def test_monotone_in_trials(self):
        assert unobserved_outcome_bound(1000) < unobserved_outcome_bound(100)

    def test_invalid(self):
        with pytest.raises(ValueError):
            unobserved_outcome_bound(0)


class TestExperimentBudget:
    def test_paper_interval_needs_millions(self):
        """A +-0.1% interval at 99% needs ~1.7M worst-case experiments —
        the scale of the paper's campaign."""
        n = experiments_for_interval(0.001, 0.99)
        assert 1e6 < n < 3e6

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            experiments_for_interval(0.0)


class TestPhasesVsReference:
    def test_stalled_learning_detected(self):
        """A faulty run that stays flat while the reference climbs shows
        the three phases in deficit space even though its own accuracy
        never falls."""
        from repro.core.analysis.phases import decompose_phases_vs_reference

        reference = np.concatenate([np.linspace(0.2, 0.95, 100), np.full(100, 0.95)])
        faulty = np.concatenate([
            np.linspace(0.2, 0.5, 40),   # normal until the fault at 40
            np.full(80, 0.5),            # stalls while reference climbs
            np.linspace(0.5, 0.95, 60),  # catches up
            np.full(20, 0.95),
        ])
        analysis = decompose_phases_vs_reference(faulty, reference, 40)
        assert analysis.has_three_phases
        assert analysis.recovered

    def test_no_fault_no_phases(self):
        from repro.core.analysis.phases import decompose_phases_vs_reference

        curve = np.concatenate([np.linspace(0.2, 0.9, 80), np.full(40, 0.9)])
        analysis = decompose_phases_vs_reference(curve, curve, 40)
        assert analysis.degrade_span is None
        assert analysis.recovered

    def test_length_mismatch_truncates(self):
        from repro.core.analysis.phases import decompose_phases_vs_reference

        reference = np.full(100, 0.9)
        faulty = np.full(80, 0.9)
        analysis = decompose_phases_vs_reference(faulty, reference, 10)
        assert analysis.recovered
