"""Tests for the Module base class (repro.nn.module)."""

import numpy as np
import pytest

from repro import nn


def build_small_model(seed: int = 0) -> nn.Sequential:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Dense(4, 8, rng),
        nn.BatchNorm(8),
        nn.ReLU(),
        nn.Dense(8, 3, rng),
    )


class TestRegistration:
    def test_parameters_enumerated(self):
        model = build_small_model()
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names
        assert "0.bias" in names
        assert "1.gamma" in names
        assert "3.weight" in names

    def test_num_parameters(self):
        model = build_small_model()
        expected = 4 * 8 + 8 + 8 + 8 + 8 * 3 + 3
        assert model.num_parameters() == expected

    def test_named_modules_includes_nesting(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.ResidualBlock(4, 4, rng))
        names = dict(model.named_modules())
        assert "0.conv1" in names
        assert "0.bn1" in names

    def test_zero_grad(self):
        model = build_small_model()
        for p in model.parameters():
            p.grad += 1.0
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())


class TestTrainEval:
    def test_mode_propagates(self):
        model = build_small_model()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateDict:
    def test_round_trip_exact(self, rng):
        model = build_small_model(0)
        x = rng.normal(size=(16, 4)).astype(np.float32)
        model.forward(x)  # update BN moving stats
        state = model.state_dict()

        other = build_small_model(1)
        other.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(model.named_parameters(), other.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)
        bn1 = model.layers[1]
        bn2 = other.layers[1]
        assert np.array_equal(bn1.moving_var, bn2.moving_var)
        assert np.array_equal(bn1.moving_mean, bn2.moving_mean)

    def test_state_dict_is_a_copy(self):
        model = build_small_model()
        state = model.state_dict()
        first = next(iter(model.parameters()))
        first.data += 1.0
        key = "param:" + next(iter(dict(model.named_parameters())))
        assert not np.array_equal(state[key], first.data)

    def test_unknown_key_raises(self):
        model = build_small_model()
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus:thing": np.zeros(1)})


class TestFaultHooks:
    def test_hook_applied_to_forward(self, rng):
        model = build_small_model()
        dense = model.layers[0]
        dense.set_fault_hook("forward", lambda t, info: t * 0.0)
        out = dense.forward(rng.normal(size=(2, 4)).astype(np.float32))
        assert np.all(out == 0)

    def test_hook_receives_site_info(self, rng):
        model = build_small_model()
        dense = model.layers[0]
        seen = {}

        def hook(t, info):
            seen.update(info)
            return t

        dense.set_fault_hook("forward", hook)
        dense.forward(rng.normal(size=(2, 4)).astype(np.float32))
        assert seen["kind"] == "forward"
        assert seen["module"] is dense

    def test_clear_hooks(self, rng):
        model = build_small_model()
        dense = model.layers[0]
        dense.set_fault_hook("forward", lambda t, info: t * 0.0)
        dense.clear_fault_hooks()
        out = dense.forward(rng.normal(size=(2, 4)).astype(np.float32))
        assert np.any(out != 0)

    def test_invalid_hook_kind_raises(self):
        model = build_small_model()
        with pytest.raises(ValueError):
            model.layers[0].set_fault_hook("bogus", lambda t, i: t)

    def test_weight_grad_hook(self, rng):
        model = build_small_model()
        dense = model.layers[0]
        fired = []
        dense.set_fault_hook("weight_grad", lambda t, info: fired.append(info) or t)
        x = rng.normal(size=(4, 4)).astype(np.float32)
        loss = nn.SoftmaxCrossEntropy()
        loss.forward(model.forward(x), np.zeros(4, dtype=np.int64))
        model.zero_grad()
        model.backward(loss.backward())
        assert fired and fired[0]["param"] == "weight"


class TestSequential:
    def test_indexing_and_iteration(self):
        model = build_small_model()
        assert len(model) == 4
        assert isinstance(model[2], nn.ReLU)
        assert len(list(iter(model))) == 4

    def test_append(self, rng):
        model = nn.Sequential(nn.Dense(2, 2, rng))
        model.append(nn.ReLU())
        assert len(model) == 2
        names = dict(model.named_modules())
        assert "1" in names

    def test_backward_reverses_order(self, rng):
        calls = []

        class Probe(nn.Module):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def forward(self, x):
                return x

            def backward(self, g):
                calls.append(self.tag)
                return g

        model = nn.Sequential(Probe("a"), Probe("b"), Probe("c"))
        model.forward(np.zeros((1, 1), dtype=np.float32))
        model.backward(np.zeros((1, 1), dtype=np.float32))
        assert calls == ["c", "b", "a"]
