"""Tests for the telemetry time-series layer (repro.observe.timeseries)
plus the Histogram edge cases its samples depend on."""

import json
import time

import pytest

from repro.engine.telemetry import ProgressTracker
from repro.observe import Histogram, MetricsRegistry
from repro.observe.counters import DEFAULT_BOUNDS
from repro.observe.timeseries import (
    SERIES_SCHEMA_VERSION,
    SeriesBuffer,
    SeriesFormatError,
    SeriesWriter,
    TelemetrySample,
    TelemetrySampler,
    build_sample,
    derive_rates,
    read_series,
    series_path,
)


# ----------------------------------------------------------------------
# Histogram.quantile edge cases (the p50/p99 every sample exports)
# ----------------------------------------------------------------------
class TestHistogramQuantiles:
    def test_empty_histogram_quantile_is_zero(self):
        hist = Histogram("t.empty")
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0 and summary["p99"] == 0.0

    def test_single_sample_every_quantile_hits_its_bucket(self):
        hist = Histogram("t.single")
        hist.observe(0.01)
        p50, p99 = hist.quantile(0.5), hist.quantile(0.99)
        assert p50 == p99
        # The answer is the bucket's upper bound, so it never
        # underestimates the observation.
        assert p50 >= 0.01
        assert p50 in DEFAULT_BOUNDS

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram("t.overflow")
        beyond = max(DEFAULT_BOUNDS) * 10  # past every bucket edge
        hist.observe(beyond)
        assert hist.quantile(0.99) == beyond
        assert hist.summary()["max"] == beyond

    def test_underflow_lands_in_first_bucket(self):
        hist = Histogram("t.underflow")
        hist.observe(min(DEFAULT_BOUNDS) / 10)
        assert hist.count == 1
        assert hist.quantile(0.5) == DEFAULT_BOUNDS[0]

    def test_quantile_ordering_on_mixed_population(self):
        hist = Histogram("t.mixed")
        for value in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0):
            hist.observe(value)
        assert hist.quantile(0.5) <= hist.quantile(0.9) <= hist.quantile(0.99)
        assert hist.quantile(0.99) <= hist.summary()["max"] * 10

    def test_custom_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("t.bad", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("t.bad", bounds=())


# ----------------------------------------------------------------------
# Counter-rate derivation
# ----------------------------------------------------------------------
class TestDeriveRates:
    def _sample(self, t, **counters):
        return TelemetrySample(t=t, counters=dict(counters))

    def test_basic_rate(self):
        prev = self._sample(10.0, done=100.0)
        cur = self._sample(20.0, done=150.0)
        assert derive_rates(prev, cur) == {"done": 5.0}

    def test_no_previous_sample_means_no_rates(self):
        assert derive_rates(None, self._sample(1.0, done=5.0)) == {}

    def test_non_advancing_time_means_no_rates(self):
        prev = self._sample(10.0, done=1.0)
        assert derive_rates(prev, self._sample(10.0, done=2.0)) == {}
        assert derive_rates(prev, self._sample(9.0, done=2.0)) == {}

    def test_counter_reset_restarts_from_current_value(self):
        # Prometheus convention: a decrease means the counter was reset,
        # so the rate restarts from the post-reset value.
        prev = self._sample(0.0, done=1000.0)
        cur = self._sample(10.0, done=30.0)
        assert derive_rates(prev, cur) == {"done": 3.0}

    def test_counter_absent_from_previous_sample_is_skipped(self):
        prev = self._sample(0.0, done=1.0)
        cur = self._sample(10.0, done=2.0, fresh=5.0)
        assert derive_rates(prev, cur) == {"done": 0.1}


# ----------------------------------------------------------------------
# Sample assembly and the flat namespace
# ----------------------------------------------------------------------
class TestBuildSample:
    def test_registry_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("engine.completed").inc(7)
        registry.histogram("engine.experiment_seconds").observe(0.5)
        sample = build_sample(registry=registry, now=123.0)
        assert sample.t == 123.0
        assert sample.counters == {"engine.completed": 7.0}
        hist = sample.histograms["engine.experiment_seconds"]
        assert hist["count"] == 1 and "p99" in hist

    def test_progress_snapshot_gauges_and_outcomes(self):
        tracker = ProgressTracker(total=4, clock=lambda: 100.0)
        tracker._start = 90.0
        tracker.task_started(0, "k0")
        tracker.task_done(0, "ok")
        tracker.task_started(1, "k1")
        tracker.task_done(1, "latent_inf_nan")
        sample = build_sample(progress=tracker.snapshot(),
                              registry=MetricsRegistry(), now=1.0)
        g = sample.gauges
        assert g["campaign.total"] == 4.0
        assert g["campaign.done"] == 2.0
        assert g["campaign.divergence_rate"] == pytest.approx(0.5)
        assert g["workers.alive"] == 2.0
        assert g["workers.busy"] == 0.0
        assert sample.outcomes == {"latent_inf_nan": 1, "ok": 1}

    def test_flat_namespace_prefixes(self):
        sample = TelemetrySample(
            t=1.0,
            gauges={"campaign.done": 3.0},
            counters={"engine.completed": 3.0},
            rates={"engine.completed": 0.5},
            histograms={"lat": {"count": 2, "sum": 1.0, "mean": 0.5,
                                "max": 0.9, "p50": 0.4, "p99": 0.9}},
            outcomes={"ok": 3})
        flat = sample.flat()
        assert flat["campaign.done"] == 3.0
        assert flat["counter.engine.completed"] == 3.0
        assert flat["rate.engine.completed"] == 0.5
        assert flat["lat.p99"] == 0.9
        assert flat["outcome.ok"] == 3.0

    def test_roundtrip_via_dict(self):
        sample = TelemetrySample(t=5.0, gauges={"g": 1.0},
                                 counters={"c": 2.0}, outcomes={"ok": 1})
        clone = TelemetrySample.from_dict(sample.to_dict())
        assert clone.to_dict() == sample.to_dict()


# ----------------------------------------------------------------------
# Ring buffer
# ----------------------------------------------------------------------
class TestSeriesBuffer:
    def test_bounded_eviction(self):
        buffer = SeriesBuffer(maxlen=3)
        for t in range(5):
            buffer.append(TelemetrySample(t=float(t)))
        assert len(buffer) == 3
        assert [s.t for s in buffer] == [2.0, 3.0, 4.0]
        assert buffer.latest().t == 4.0

    def test_window_selects_by_age(self):
        buffer = SeriesBuffer(maxlen=10)
        for t in (0.0, 5.0, 9.0, 10.0):
            buffer.append(TelemetrySample(t=t))
        window = buffer.window(seconds=5.0, now=10.0)
        assert [s.t for s in window] == [5.0, 9.0, 10.0]

    def test_values_extracts_one_metric(self):
        buffer = SeriesBuffer(maxlen=10)
        buffer.append(TelemetrySample(t=1.0, gauges={"m": 2.0}))
        buffer.append(TelemetrySample(t=2.0))  # metric absent: skipped
        buffer.append(TelemetrySample(t=3.0, gauges={"m": 4.0}))
        assert buffer.values("m") == [(1.0, 2.0), (3.0, 4.0)]

    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            SeriesBuffer(maxlen=0)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
class TestSeriesPersistence:
    def test_series_path_next_to_store(self, tmp_path):
        assert series_path(tmp_path / "camp.jsonl") == \
            tmp_path / "camp.series.jsonl"

    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "camp.series.jsonl"
        with SeriesWriter(path, meta={"workload": "resnet"}) as writer:
            writer.append(TelemetrySample(t=1.0, gauges={"g": 1.5}))
            writer.append(TelemetrySample(t=2.0, counters={"c": 3.0}))
        header, samples = read_series(path)
        assert header["schema"] == SERIES_SCHEMA_VERSION
        assert header["meta"] == {"workload": "resnet"}
        assert [s.t for s in samples] == [1.0, 2.0]
        assert samples[0].gauges == {"g": 1.5}
        assert samples[1].counters == {"c": 3.0}

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "camp.series.jsonl"
        with SeriesWriter(path) as writer:
            writer.append(TelemetrySample(t=1.0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"record":"sample","t":2.0,"gau')  # killed mid-write
        _, samples = read_series(path)
        assert [s.t for s in samples] == [1.0]

    def test_corrupt_interior_line_is_fatal(self, tmp_path):
        path = tmp_path / "camp.series.jsonl"
        with SeriesWriter(path) as writer:
            writer.append(TelemetrySample(t=1.0))
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "not json")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(SeriesFormatError):
            read_series(path)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "camp.series.jsonl"
        path.write_text(json.dumps(
            {"record": "header", "schema": 999,
             "kind": "telemetry_series"}) + "\n", encoding="utf-8")
        with pytest.raises(SeriesFormatError):
            read_series(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "camp.series.jsonl"
        path.write_text('{"record":"sample","t":1.0}\n', encoding="utf-8")
        with pytest.raises(SeriesFormatError):
            read_series(path)


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
class TestTelemetrySampler:
    def test_sample_once_derives_rates_and_persists(self, tmp_path):
        path = tmp_path / "s.series.jsonl"
        samples = [TelemetrySample(t=0.0, counters={"c": 0.0}),
                   TelemetrySample(t=10.0, counters={"c": 20.0})]
        sampler = TelemetrySampler(lambda: samples[sampler.samples_taken],
                                   interval=5.0, path=path)
        assert sampler.sample_once().rates == {}
        assert sampler.sample_once().rates == {"c": 2.0}
        sampler.stop(final_sample=False)
        _, persisted = read_series(path)
        assert len(persisted) == 2
        assert persisted[1].rates == {"c": 2.0}

    def test_provider_errors_are_swallowed_and_counted(self):
        def provider():
            raise RuntimeError("registry on fire")
        sampler = TelemetrySampler(provider, interval=1.0)
        assert sampler.sample_once() is None
        assert sampler.errors == 1
        assert "registry on fire" in sampler.last_error
        assert len(sampler.buffer) == 0

    def test_background_thread_samples_and_final_sample_on_stop(self):
        sampler = TelemetrySampler(
            lambda: TelemetrySample(t=float(sampler.samples_taken)),
            interval=0.01)
        with sampler:
            deadline = 200
            while sampler.samples_taken < 2 and deadline:
                deadline -= 1
                time.sleep(0.01)
        # stop() takes one final sample so the series ends on the
        # campaign's terminal state.
        assert sampler.samples_taken >= 3

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TelemetrySampler(lambda: None, interval=0.0)
