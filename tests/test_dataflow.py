"""Tests for the accelerator dataflow geometry (Table 1's cycle model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.dataflow import (
    DataflowMap,
    canonical_view_shape,
    from_canonical,
    to_canonical,
)

shapes = st.one_of(
    st.tuples(st.integers(1, 4), st.integers(1, 40), st.integers(1, 5), st.integers(1, 5)),
    st.tuples(st.integers(1, 8), st.integers(1, 12), st.integers(1, 40)),
    st.tuples(st.integers(1, 20), st.integers(1, 40)),
    st.tuples(st.integers(1, 64)),
)


class TestCanonicalization:
    @given(shapes)
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, shape):
        rng = np.random.default_rng(sum(shape))
        x = rng.normal(size=shape).astype(np.float32)
        canonical = to_canonical(x)
        assert canonical.shape == canonical_view_shape(shape)
        back = from_canonical(np.ascontiguousarray(canonical), shape)
        assert np.array_equal(back, x)

    def test_2d_mapping(self):
        # (N, F): features become channels, rows become width.
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        canonical = to_canonical(x)
        assert canonical.shape == (1, 3, 1, 2)
        assert canonical[0, 2, 0, 1] == x[1, 2]

    def test_3d_mapping(self):
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 4)  # (N, T, D)
        canonical = to_canonical(x)
        assert canonical.shape == (2, 4, 1, 3)
        assert canonical[1, 3, 0, 2] == x[1, 2, 3]

    def test_unsupported_ndim(self):
        with pytest.raises(ValueError):
            to_canonical(np.zeros((2, 2, 2, 2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            canonical_view_shape((1, 2, 3, 4, 5))


class TestDataflowMap:
    def test_cycle_count(self):
        # 33 channels with 16 lanes -> 3 groups; 2x(4x5) spatial.
        flow = DataflowMap((2, 33, 4, 5))
        assert flow.channel_groups == 3
        assert flow.num_cycles == 2 * 3 * 4 * 5

    def test_decode_encode_consistency(self):
        flow = DataflowMap((2, 20, 3, 4))
        for cycle in range(flow.num_cycles):
            b, g, h, w = flow.decode_cycle(cycle)
            # Re-encode: schedule is ((b * groups + g) * H + h) * W + w.
            back = ((b * flow.channel_groups + g) * 3 + h) * 4 + w
            assert back == cycle

    def test_out_of_range_cycle(self):
        flow = DataflowMap((1, 16, 2, 2))
        with pytest.raises(ValueError):
            flow.decode_cycle(flow.num_cycles)

    def test_elements_at_cycle_consecutive_channels(self):
        """Table 1: outputs in one cycle are 16 consecutive channels at
        one spatial position."""
        flow = DataflowMap((1, 40, 2, 2))
        b, c, h, w = flow.elements_at_cycle(0)
        assert np.array_equal(c, np.arange(16))
        assert len(set(h.tolist())) == 1 and len(set(w.tolist())) == 1
        # Last group is clipped to the tensor's channel count.
        b, c, h, w = flow.elements_at_cycle(flow.num_cycles - 1)
        assert np.array_equal(c, np.arange(32, 40))

    def test_consecutive_cycles_advance_width(self):
        """Table 1: output elements across n cycles grow in the width
        dimension."""
        flow = DataflowMap((1, 16, 2, 8))
        _, _, h0, w0 = flow.elements_at_cycle(0)
        _, _, h1, w1 = flow.elements_at_cycle(1)
        assert h0[0] == h1[0]
        assert w1[0] == w0[0] + 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_all_cycles_cover_all_elements_once(self, seed):
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(1, 3)), int(rng.integers(1, 40)),
                 int(rng.integers(1, 4)), int(rng.integers(1, 4)))
        flow = DataflowMap(shape)
        seen = np.zeros(int(np.prod(canonical_view_shape(shape))), dtype=int)
        for cycle in range(flow.num_cycles):
            idx = flow.flat_indices(flow.elements_at_cycle(cycle))
            seen[idx] += 1
        assert np.all(seen == 1)

    def test_elements_for_cycles_clips_at_end(self):
        flow = DataflowMap((1, 16, 1, 4))
        coords = flow.elements_for_cycles(flow.num_cycles - 1, 10)
        assert coords[0].size == 16  # only one cycle left

    def test_lane_elements(self):
        flow = DataflowMap((1, 40, 1, 4))
        b, c, h, w = flow.lane_element_for_cycles(0, 3, lane=5)
        assert np.array_equal(c, [5, 5, 5])
        assert np.array_equal(w, [0, 1, 2])
        # Lane beyond the last group's channels -> masked (empty).
        last_group_start = 2 * 4  # group 2 cycles start at 8
        coords = flow.lane_element_for_cycles(last_group_start, 1, lane=15)
        assert coords[0].size == 0  # channel 47 >= 40

    def test_custom_config(self):
        flow = DataflowMap((1, 8, 2, 2), AcceleratorConfig(mac_lanes=4))
        assert flow.channel_groups == 2
        _, c, _, _ = flow.elements_at_cycle(0)
        assert c.size == 4

    def test_random_cycle_in_range(self, rng):
        flow = DataflowMap((2, 16, 3, 3))
        for _ in range(50):
            assert 0 <= flow.random_cycle(rng) < flow.num_cycles


class TestGeometryProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_lane_elements_subset_of_cycle_elements(self, seed):
        """A single lane's elements across n cycles are always a subset of
        the full n-cycle element set (group 3 never exceeds group 1)."""
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(1, 3)), int(rng.integers(1, 40)),
                 int(rng.integers(1, 4)), int(rng.integers(1, 4)))
        flow = DataflowMap(shape)
        cycle = int(rng.integers(0, flow.num_cycles))
        n = int(rng.integers(1, 5))
        lane = int(rng.integers(0, 16))
        lane_coords = flow.lane_element_for_cycles(cycle, n, lane)
        all_coords = flow.elements_for_cycles(cycle, n)
        if lane_coords[0].size == 0:
            return
        lane_flat = set(flow.flat_indices(lane_coords).tolist())
        all_flat = set(flow.flat_indices(all_coords).tolist())
        assert lane_flat <= all_flat

    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_cycle_elements_share_spatial_position(self, seed):
        """All elements of one cycle sit at a single (batch, h, w) — the
        16-lane channel burst of Table 1."""
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(1, 3)), int(rng.integers(1, 40)),
                 int(rng.integers(1, 4)), int(rng.integers(1, 4)))
        flow = DataflowMap(shape)
        cycle = int(rng.integers(0, flow.num_cycles))
        b, c, h, w = flow.elements_at_cycle(cycle)
        assert len(set(b.tolist())) == 1
        assert len(set(h.tolist())) == 1
        assert len(set(w.tolist())) == 1
        assert np.array_equal(c, np.arange(c.min(), c.max() + 1))
