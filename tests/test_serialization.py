"""Tests for campaign result serialization."""

import json

import pytest

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults import Campaign, HardwareFault, OpSite
from repro.core.faults.serialization import (
    campaign_from_dict,
    campaign_to_dict,
    fault_from_dict,
    fault_to_dict,
    load_campaign,
    merge_campaigns,
    save_campaign,
)
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def small_result():
    spec = build_workload("resnet", size="tiny", seed=0)
    campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=6,
                        horizon=12, inject_window=4, test_every=6)
    return campaign.run(num_experiments=4, seed=2)


class TestFaultRoundTrip:
    @pytest.mark.parametrize("ff", [
        FFDescriptor("datapath", bit=30, has_feedback=True),
        FFDescriptor("local_control"),
        FFDescriptor("global_control", group=7, has_feedback=True),
    ])
    def test_round_trip(self, ff):
        fault = HardwareFault(ff=ff, site=OpSite("1.conv1", "forward"),
                              iteration=12, device=3, seed=99)
        back = fault_from_dict(fault_to_dict(fault))
        assert back.ff == fault.ff
        assert back.site == fault.site
        assert (back.iteration, back.device, back.seed) == (12, 3, 99)

    def test_json_stable(self):
        fault = HardwareFault(ff=FFDescriptor("datapath", bit=5),
                              site=OpSite("x", "forward"), iteration=1,
                              device=0, seed=2)
        text = json.dumps(fault_to_dict(fault))
        assert fault_from_dict(json.loads(text)).ff.bit == 5


class TestCampaignRoundTrip:
    def test_preserves_statistics(self, small_result):
        back = campaign_from_dict(campaign_to_dict(small_result))
        assert back.workload == small_result.workload
        assert back.num_experiments == small_result.num_experiments
        assert back.breakdown() == small_result.breakdown()
        assert back.unexpected_fraction() == small_result.unexpected_fraction()

    def test_nonfinite_values_survive(self, small_result):
        # Force an inf condition value and round-trip it.
        small_result.results[0].condition_window["max_mvar"] = float("inf")
        back = campaign_from_dict(campaign_to_dict(small_result))
        assert back.results[0].condition_window["max_mvar"] == float("inf")

    def test_save_load(self, small_result, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        assert loaded.num_experiments == small_result.num_experiments

    def test_merge(self, small_result):
        merged = merge_campaigns([small_result, small_result])
        assert merged.num_experiments == 2 * small_result.num_experiments

    def test_merge_rejects_mixed_workloads(self, small_result):
        from repro.core.faults.campaign import CampaignResult

        other = CampaignResult(workload="densenet")
        with pytest.raises(ValueError):
            merge_campaigns([small_result, other])
        with pytest.raises(ValueError):
            merge_campaigns([])


class TestSchemaVersion:
    def test_written_documents_carry_version(self, small_result):
        from repro.core.faults.serialization import CAMPAIGN_SCHEMA_VERSION

        assert campaign_to_dict(small_result)["schema"] == \
            CAMPAIGN_SCHEMA_VERSION

    def test_unknown_version_rejected(self, small_result):
        data = campaign_to_dict(small_result)
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema version 99"):
            campaign_from_dict(data)

    def test_legacy_unversioned_documents_accepted(self, small_result):
        data = campaign_to_dict(small_result)
        del data["schema"]
        assert campaign_from_dict(data).num_experiments == \
            small_result.num_experiments

    def test_foreign_number_strings_rejected(self, small_result):
        """Strings the writer never emits (e.g. "NaN" from another tool)
        must raise instead of being silently coerced by float()."""
        data = campaign_to_dict(small_result)
        data["results"][0]["max_abs_faulty"] = "NaN"
        with pytest.raises(ValueError, match="unrecognized serialized number"):
            campaign_from_dict(data)
