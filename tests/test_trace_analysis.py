"""Tests for trace analytics (repro.observe.analysis) and the
engine-vs-direct reporting parity the flight recorder promises."""

import pytest

from repro.core.analysis import render_propagation_report, render_trace_analysis
from repro.core.faults import Campaign
from repro.core.faults.serialization import fault_to_dict
from repro.engine import experiment_key
from repro.observe import (
    DETECTOR_FIRED,
    EXPERIMENT_FINISHED,
    EXPERIMENT_STARTED,
    FAULT_INJECTED,
    ITERATION_STATS,
    Tracer,
    read_trace,
)
from repro.observe import analysis
from repro.workloads import build_workload

CAMPAIGN_SEED = 12  # chosen so the detector fires in some experiments
NUM_EXPERIMENTS = 4


# ----------------------------------------------------------------------
# Synthetic traces: analytics semantics without training anything.
# ----------------------------------------------------------------------
def _experiment(tracer, key, fault_iter, outcome, detect_at=None,
                spike=1e6, total=12):
    """Emit one synthetic experiment's event story into ``tracer``."""
    tracer.set_context(key=key, worker=0, attempt=0)
    tracer.emit(EXPERIMENT_STARTED)
    for it in range(total):
        spiked = fault_iter is not None and it >= fault_iter
        magnitude = spike if spiked else 0.01
        tracer.emit(ITERATION_STATS, iteration=it, loss=1.0 / (it + 1),
                    acc=0.5, history_magnitude=magnitude,
                    mvar_magnitude=magnitude / 2)
        if it == fault_iter:
            tracer.emit(FAULT_INJECTED, iteration=it, device=1,
                        site="2.conv1", kind="forward", op="conv",
                        ff_category="transient", model="bitflip",
                        num_faulty=3, max_abs_faulty=spike)
        if detect_at is not None and it == detect_at:
            tracer.emit(DETECTOR_FIRED, iteration=it,
                        condition="gradient_history", magnitude=magnitude,
                        bound=1.0)
    tracer.emit(EXPERIMENT_FINISHED, status="done", outcome=outcome)
    tracer.clear_context()


@pytest.fixture
def synthetic_trace():
    tracer = Tracer()
    _experiment(tracer, "exp0", fault_iter=2, outcome="latent_inf_nan",
                detect_at=3)
    _experiment(tracer, "exp1", fault_iter=8, outcome="masked_improved")
    _experiment(tracer, "exp2", fault_iter=5, outcome="masked_improved",
                detect_at=6)
    _experiment(tracer, "exp3", fault_iter=None, outcome="masked_improved")
    return tracer.events()


class TestAnalysisSemantics:
    def test_experiments_groups_by_key(self, synthetic_trace):
        groups = analysis.experiments(synthetic_trace)
        assert list(groups) == ["exp0", "exp1", "exp2", "exp3"]

    def test_experiment_summary(self, synthetic_trace):
        summary = analysis.experiment_summary(
            analysis.experiments(synthetic_trace)["exp0"])
        assert summary["key"] == "exp0"
        assert summary["fault"]["iteration"] == 2
        assert summary["fault"]["site"] == "2.conv1"
        assert summary["iterations"] == list(range(12))
        assert summary["outcome"] == "latent_inf_nan"
        # Both necessary conditions fire right at the fault iteration.
        assert {o["condition"] for o in summary["onsets"]} == \
            {"gradient_history", "mvar"}
        assert all(o["latency_from_fault"] == 0 for o in summary["onsets"])
        assert summary["condition_window"]["max_history"] == 1e6
        assert summary["detection_latency"] == 1

    def test_unfaulted_experiment_has_no_propagation(self, synthetic_trace):
        summary = analysis.experiment_summary(
            analysis.experiments(synthetic_trace)["exp3"])
        assert summary["fault"] is None
        assert summary["onsets"] == []
        assert summary["detection_latency"] is None

    def test_detection_latencies(self, synthetic_trace):
        rows = {r["key"]: r for r in
                analysis.detection_latencies(synthetic_trace)}
        assert set(rows) == {"exp0", "exp1", "exp2"}  # exp3 had no fault
        assert rows["exp0"]["latency"] == 1
        assert rows["exp1"]["latency"] is None
        assert rows["exp2"]["latency"] == 1
        assert analysis.detection_latency_histogram(synthetic_trace) == {1: 2}

    def test_condition_tallies(self, synthetic_trace):
        tallies = analysis.condition_tallies(synthetic_trace)
        assert tallies["experiments"] == 3
        assert tallies["onset_any"] == 3
        assert tallies["onset_within_window"] == 3
        by_outcome = tallies["by_outcome"]
        assert by_outcome["latent_inf_nan"]["count"] == 1
        assert by_outcome["masked_improved"]["count"] == 2
        lo, hi = by_outcome["latent_inf_nan"]["history_range"]
        assert lo == hi == 1e6

    def test_phase_vulnerability(self, synthetic_trace):
        buckets = analysis.phase_vulnerability(synthetic_trace, phases=3)
        assert [b["experiments"] for b in buckets] == [1, 1, 1]
        # exp0 (fault @ 2) is unexpected and detected; exp1/exp2 are benign.
        assert [b["unexpected"] for b in buckets] == [1, 0, 0]
        assert buckets[0]["unexpected_rate"] == 1.0
        assert [b["detected"] for b in buckets] == [1, 1, 0]

    def test_phase_vulnerability_rejects_bad_phases(self, synthetic_trace):
        with pytest.raises(ValueError):
            analysis.phase_vulnerability(synthetic_trace, phases=0)

    def test_campaign_summary(self, synthetic_trace):
        summary = analysis.campaign_summary(synthetic_trace)
        assert summary["experiments"] == 4
        assert summary["with_fault"] == 3
        assert summary["detected"] == 2
        assert summary["mean_detection_latency"] == 1.0
        assert summary["outcomes"] == {"latent_inf_nan": 1,
                                       "masked_improved": 3}
        rendered = render_trace_analysis(summary)
        assert "4 experiments (3 with fault)" in rendered
        assert "detection: 2/3" in rendered
        assert "Table 4" in rendered


# ----------------------------------------------------------------------
# Acceptance: a real traced campaign through the engine, analyzed from
# the merged trace, must reproduce the direct single-run reports.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_campaign(tmp_path_factory):
    campaign = Campaign(build_workload("resnet", size="tiny", seed=0),
                        num_devices=2, seed=0, warmup_iterations=6,
                        horizon=10, inject_window=4, test_every=5,
                        detect=True)
    campaign.prepare()
    store = tmp_path_factory.mktemp("traced") / "results.jsonl"
    result = campaign.run(NUM_EXPERIMENTS, seed=CAMPAIGN_SEED, parallel=2,
                          store=store, trace=True)
    return campaign, result, result.engine_report.trace_path


class TestTracedCampaign:
    def test_merged_trace_has_worker_side_events(self, traced_campaign):
        _, result, trace_path = traced_campaign
        assert len(result.results) == NUM_EXPERIMENTS
        trace = read_trace(trace_path)  # schema-validating read
        counts = trace.type_counts()
        assert counts[EXPERIMENT_STARTED] == NUM_EXPERIMENTS
        assert counts[EXPERIMENT_FINISHED] == NUM_EXPERIMENTS
        assert counts[FAULT_INJECTED] == NUM_EXPERIMENTS
        assert counts[ITERATION_STATS] >= NUM_EXPERIMENTS * 10
        assert counts[DETECTOR_FIRED] > 0  # seed chosen to trigger it
        workers = {e.data.get("worker") for e in trace.events}
        assert len(workers) >= 2  # events really came from both workers

    def test_campaign_summary_matches_engine_outcomes(self, traced_campaign):
        _, result, trace_path = traced_campaign
        summary = analysis.campaign_summary(read_trace(trace_path))
        assert summary["experiments"] == NUM_EXPERIMENTS
        assert summary["with_fault"] == NUM_EXPERIMENTS
        expected = {}
        for experiment in result.results:
            outcome = experiment.report.outcome.value
            expected[outcome] = expected.get(outcome, 0) + 1
        assert summary["outcomes"] == expected

    def test_propagation_report_bit_identical_to_direct_run(
            self, traced_campaign):
        campaign, _, trace_path = traced_campaign
        merged = analysis.propagation_summaries(read_trace(trace_path))
        faults = campaign.sample_faults(NUM_EXPERIMENTS, seed=CAMPAIGN_SEED)
        for index, fault in enumerate(faults):
            key = experiment_key(index, fault_to_dict(fault))
            engine_report = render_propagation_report(merged[key])
            tracer = Tracer()
            campaign.run_experiment(fault, tracer=tracer)
            direct_report = render_propagation_report(
                analysis.experiment_summary(tracer.events()))
            assert direct_report == engine_report, (
                f"engine-traced and direct reports differ for {key}")
