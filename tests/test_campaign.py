"""Tests for the statistical FI campaign runner."""

import numpy as np
import pytest

from repro.core.analysis.classify import Outcome
from repro.core.faults import Campaign, InferenceCampaign
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def small_campaign():
    """A shared prepared campaign (training the baseline is the slow part)."""
    spec = build_workload("resnet", size="tiny", seed=0)
    campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=10,
                        horizon=20, inject_window=6, test_every=5)
    campaign.prepare()
    return campaign


class TestPreparation:
    def test_prepare_idempotent(self, small_campaign):
        snapshot = small_campaign._snapshot
        small_campaign.prepare()
        assert small_campaign._snapshot is snapshot

    def test_reference_spans_horizon(self, small_campaign):
        assert small_campaign.reference.num_iterations == 30  # warmup + horizon


class TestSampling:
    def test_faults_in_injection_window(self, small_campaign):
        rng = np.random.default_rng(0)
        for _ in range(30):
            fault = small_campaign.sample_experiment(rng)
            assert 10 <= fault.iteration < 16
            assert 0 <= fault.device < 2


class TestExperiments:
    def test_run_experiment_produces_report(self, small_campaign):
        rng = np.random.default_rng(1)
        fault = small_campaign.sample_experiment(rng)
        result = small_campaign.run_experiment(fault)
        assert isinstance(result.outcome, Outcome)
        assert result.condition_window["max_history"] >= 0

    def test_experiments_independent(self, small_campaign):
        """Each experiment restores the same baseline: running the same
        fault twice gives the same outcome."""
        rng = np.random.default_rng(2)
        fault = small_campaign.sample_experiment(rng)
        r1 = small_campaign.run_experiment(fault)
        r2 = small_campaign.run_experiment(fault)
        assert r1.outcome == r2.outcome
        assert r1.num_faulty_elements == r2.num_faulty_elements

    def test_run_aggregates(self, small_campaign):
        result = small_campaign.run(num_experiments=6, seed=5)
        assert result.num_experiments == 6
        breakdown = result.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        interval = result.unexpected_interval()
        assert 0.0 <= interval.low <= interval.high <= 1.0

    def test_by_ff_category_structure(self, small_campaign):
        result = small_campaign.run(num_experiments=5, seed=6)
        cats = result.by_ff_category()
        assert set(cats) == {"critical_control", "upper_exponent", "other"}
        total = sum(c["population_fraction"] for c in cats.values())
        assert total == pytest.approx(1.0)


class TestInferenceCampaign:
    def test_sdc_rates_and_breakdown(self):
        spec = build_workload("resnet", size="tiny", seed=0)
        campaign = InferenceCampaign(spec, seed=0, train_iterations=20, num_devices=2)
        stats = campaign.run(num_experiments=15, seed=3)
        assert 0.0 <= stats["sdc_rate"] <= 1.0
        assert 0.0 <= stats["nonfinite_rate"] <= 1.0
        # Full Table 5 taxonomy: counts cover every experiment, and the
        # rates are the same numbers the breakdown normalizes to.
        assert stats["num_experiments"] == 15
        assert set(stats["breakdown"]) == {"masked", "sdc", "nonfinite"}
        assert sum(stats["breakdown"].values()) == 15
        assert stats["masked_rate"] == stats["breakdown"]["masked"] / 15
        assert stats["sdc_rate"] == stats["breakdown"]["sdc"] / 15
        # SDC takes precedence: nonfinite_rate counts all nonfinite
        # experiments, so it bounds the nonfinite breakdown bucket.
        assert stats["breakdown"]["nonfinite"] <= stats["nonfinite_rate"] * 15
