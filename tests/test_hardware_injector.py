"""Tests for op-site enumeration, fault sampling, and the injector."""

import pytest

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults import (
    FaultInjector,
    HardwareFault,
    OpSite,
    UpdateFaultInjector,
    enumerate_sites,
    sample_fault,
)
from repro.workloads import build_workload


class TestEnumerateSites:
    def test_resnet_sites(self, tiny_resnet_spec):
        model = tiny_resnet_spec.build_model(0)
        sites = enumerate_sites(model)
        names = {(s.module_name, s.kind) for s in sites}
        assert ("0.0", "forward") in names          # stem conv
        assert ("1.conv1", "weight_grad") in names  # residual conv
        assert ("1.bn1", "forward") in names        # BatchNorm
        assert ("4", "input_grad") in names         # classifier Dense

    def test_backward_pass_flag(self):
        assert not OpSite("x", "forward").in_backward_pass
        assert OpSite("x", "weight_grad").in_backward_pass
        assert OpSite("x", "input_grad").in_backward_pass

    def test_embedding_has_no_input_grad_site(self):
        spec = build_workload("transformer", size="tiny", seed=0)
        sites = enumerate_sites(spec.build_model(0))
        emb_sites = [s for s in sites if s.module_name == "0"]
        kinds = {s.kind for s in emb_sites}
        assert kinds == {"forward", "weight_grad"}

    def test_kind_filter(self, tiny_resnet_spec):
        model = tiny_resnet_spec.build_model(0)
        sites = enumerate_sites(model, kinds=("forward",))
        assert all(s.kind == "forward" for s in sites)

    def test_no_sites_raises(self, rng):
        from repro import nn

        with pytest.raises(ValueError):
            enumerate_sites(nn.Sequential(nn.ReLU()))


class TestSampleFault:
    def test_ranges(self, tiny_resnet_spec, rng):
        model = tiny_resnet_spec.build_model(0)
        for _ in range(50):
            fault = sample_fault(model, rng, max_iteration=10, num_devices=4)
            assert 0 <= fault.iteration < 10
            assert 0 <= fault.device < 4
            assert fault.ff.category in ("datapath", "local_control", "global_control")

    def test_describe(self, tiny_resnet_spec, rng):
        model = tiny_resnet_spec.build_model(0)
        fault = sample_fault(model, rng, max_iteration=5, num_devices=2)
        desc = fault.describe()
        assert "site" in desc and "ff_category" in desc


class TestFaultInjector:
    def _fault(self, iteration=2, device=1, seed=3, site=None):
        ff = FFDescriptor("global_control", group=1, has_feedback=True)
        return HardwareFault(
            ff=ff,
            site=site or OpSite("1.conv1", "weight_grad"),
            iteration=iteration, device=device, seed=seed,
        )

    def test_fires_once_at_target_iteration(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        injector = FaultInjector(self._fault(iteration=2))
        trainer.add_hook(injector)
        trainer.train(5)
        assert injector.fired
        assert injector.record is not None
        assert injector.record.model == "group1"

    def test_does_not_fire_before_iteration(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        injector = FaultInjector(self._fault(iteration=4))
        trainer.add_hook(injector)
        trainer.train(3)
        assert not injector.fired

    def test_hook_disarmed_after_iteration(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        injector = FaultInjector(self._fault(iteration=1))
        trainer.add_hook(injector)
        trainer.train(4)
        module = dict(trainer.replicas[1].named_modules())["1.conv1"]
        assert module._fault_hooks["weight_grad"] is None

    def test_targets_correct_device_only(self, make_trainer):
        """The fault perturbs only the chosen device's gradient stream."""
        trainer = make_trainer(num_devices=2)
        injector = FaultInjector(self._fault(iteration=1, device=1, seed=3))
        trainer.add_hook(injector)
        # After the faulty iteration the averaged gradient includes the
        # huge faulty contribution diluted by 1/num_devices.
        trainer.train(2)
        assert injector.fired
        assert injector.record.max_abs_faulty() > 1e6

    def test_invalid_device(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        injector = FaultInjector(self._fault(device=5))
        trainer.add_hook(injector)
        with pytest.raises(ValueError):
            trainer.train(3)

    def test_unknown_site(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        injector = FaultInjector(self._fault(site=OpSite("nope", "forward")))
        trainer.add_hook(injector)
        with pytest.raises(KeyError):
            trainer.train(3)


class TestUpdateFaultInjector:
    def test_perturbs_weight_update(self, make_trainer):
        trainer = make_trainer(num_devices=2, workload="resnet_sgd")
        ff = FFDescriptor("global_control", group=1, has_feedback=True)
        fault = HardwareFault(ff=ff, site=OpSite("optimizer", "weight_update"),
                              iteration=2, device=0, seed=11)
        injector = UpdateFaultInjector(fault)
        trainer.add_hook(injector)
        trainer.train(4)
        assert injector.fired
        assert injector.record is not None

    def test_hook_removed_after_iteration(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        ff = FFDescriptor("global_control", group=2, has_feedback=False)
        fault = HardwareFault(ff=ff, site=OpSite("optimizer", "weight_update"),
                              iteration=1, device=0, seed=0)
        injector = UpdateFaultInjector(fault)
        trainer.add_hook(injector)
        trainer.train(3)
        assert trainer.optimizer._update_hook is None
