"""Tests for loss functions, including the gradient bound that anchors
Algorithm 1 (softmax-cross-entropy input gradients lie in [-1/m, 1/m])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import (
    DetectionLoss,
    MSELoss,
    SequenceCrossEntropy,
    SoftmaxCrossEntropy,
    accuracy,
    sequence_accuracy,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = softmax(rng.normal(size=(8, 5)).astype(np.float32) * 10)
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)

    def test_stable_for_huge_inputs(self):
        out = softmax(np.array([[1e30, 0.0, -1e30]], dtype=np.float32))
        assert np.allclose(out, [[1.0, 0.0, 0.0]])

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(4, 6)).astype(np.float32)
        assert np.allclose(softmax(x), softmax(x + 100.0), atol=1e-5)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32)
        loss = SoftmaxCrossEntropy()
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_gradient_formula(self, rng):
        logits = rng.normal(size=(6, 4)).astype(np.float32)
        target = rng.integers(0, 4, size=6)
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, target)
        grad = loss.backward()
        probs = softmax(logits)
        expected = probs.copy()
        expected[np.arange(6), target] -= 1.0
        assert np.allclose(grad, expected / 6, atol=1e-6)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=2, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_algorithm1_step1_bound(self, m, classes):
        """Every input-gradient element lies in [-1/m, 1/m] — Algorithm 1
        Step 1, for arbitrary (including faulty-looking huge) logits."""
        rng = np.random.default_rng(m * 100 + classes)
        logits = (rng.normal(size=(m, classes)) * rng.choice([1, 1e3, 1e30])).astype(
            np.float32
        )
        target = rng.integers(0, classes, size=m)
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, target)
        grad = loss.backward()
        assert np.all(np.abs(grad) <= 1.0 / m + 1e-7)

    def test_numeric_gradient(self, rng):
        logits = rng.normal(size=(4, 3)).astype(np.float64)
        target = np.array([0, 1, 2, 1])
        loss = SoftmaxCrossEntropy()
        loss.forward(logits.astype(np.float32), target)
        grad = loss.backward()
        eps = 1e-4
        for i in range(4):
            for j in range(3):
                plus = logits.copy(); plus[i, j] += eps
                minus = logits.copy(); minus[i, j] -= eps
                num = (
                    loss.forward(plus.astype(np.float32), target)
                    - loss.forward(minus.astype(np.float32), target)
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-3)


class TestSequenceCrossEntropy:
    def test_padding_excluded(self, rng):
        logits = rng.normal(size=(2, 4, 5)).astype(np.float32)
        target = np.array([[1, 2, 0, 0], [3, 0, 0, 0]])  # 0 = PAD
        loss = SequenceCrossEntropy(pad_id=0)
        loss.forward(logits, target)
        grad = loss.backward()
        assert np.all(grad[0, 2:] == 0)
        assert np.all(grad[1, 1:] == 0)

    def test_all_padding_safe(self):
        logits = np.zeros((1, 3, 4), dtype=np.float32)
        target = np.zeros((1, 3), dtype=np.int64)
        loss = SequenceCrossEntropy(pad_id=0)
        value = loss.forward(logits, target)
        assert value == 0.0
        assert np.all(loss.backward() == 0)

    def test_matches_flat_cross_entropy_without_padding(self, rng):
        logits = rng.normal(size=(3, 4, 5)).astype(np.float32)
        target = rng.integers(1, 5, size=(3, 4))
        seq = SequenceCrossEntropy(pad_id=0)
        flat = SoftmaxCrossEntropy()
        seq_val = seq.forward(logits, target)
        flat_val = flat.forward(logits.reshape(12, 5), target.reshape(12))
        assert seq_val == pytest.approx(flat_val, rel=1e-4)


class TestMSELoss:
    def test_zero_for_exact(self, rng):
        x = rng.normal(size=(4, 4)).astype(np.float32)
        assert MSELoss().forward(x, x) == 0.0

    def test_gradient(self, rng):
        pred = rng.normal(size=(3, 3)).astype(np.float32)
        target = rng.normal(size=(3, 3)).astype(np.float32)
        loss = MSELoss()
        loss.forward(pred, target)
        grad = loss.backward()
        assert np.allclose(grad, 2 * (pred - target) / 9, atol=1e-6)


class TestDetectionLoss:
    def _target(self, n=2, k=3, s=4):
        t = np.zeros((n, 5 + k, s, s), dtype=np.float32)
        t[:, 4, 1, 2] = 1.0
        t[:, 5, 1, 2] = 1.0
        t[:, 0, 1, 2] = 0.5
        return t

    def test_loss_positive(self, rng):
        pred = rng.normal(size=(2, 8, 4, 4)).astype(np.float32)
        loss = DetectionLoss(num_classes=3)
        assert loss.forward(pred, self._target()) > 0

    def test_gradient_shape(self, rng):
        pred = rng.normal(size=(2, 8, 4, 4)).astype(np.float32)
        loss = DetectionLoss(num_classes=3)
        loss.forward(pred, self._target())
        assert loss.backward().shape == pred.shape

    def test_numeric_gradient(self, rng):
        pred = rng.normal(size=(1, 8, 4, 4)).astype(np.float64)
        target = self._target(n=1)
        loss = DetectionLoss(num_classes=3)
        loss.forward(pred.astype(np.float32), target)
        grad = loss.backward()
        eps = 1e-3
        idx = [(0, 4, 1, 2), (0, 0, 1, 2), (0, 5, 1, 2), (0, 4, 0, 0)]
        for i in idx:
            plus = pred.copy(); plus[i] += eps
            minus = pred.copy(); minus[i] -= eps
            num = (
                loss.forward(plus.astype(np.float32), target)
                - loss.forward(minus.astype(np.float32), target)
            ) / (2 * eps)
            assert grad[i] == pytest.approx(num, rel=0.03, abs=1e-3)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]], dtype=np.float32)
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_nan_never_correct(self):
        logits = np.full((4, 3), np.nan, dtype=np.float32)
        # All-NaN rows pick class 0 deterministically; targets elsewhere.
        assert accuracy(logits, np.array([1, 2, 1, 2])) == 0.0

    def test_sequence_accuracy_ignores_padding(self):
        logits = np.zeros((1, 3, 4), dtype=np.float32)
        logits[0, :, 2] = 10.0
        target = np.array([[2, 2, 0]])
        assert sequence_accuracy(logits, target, pad_id=0) == 1.0
