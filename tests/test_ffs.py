"""Tests for the FF inventory (population structure of Sec. 4.3.1 / Table 1)."""

import numpy as np
import pytest

from repro.accelerator.ffs import (
    DATAPATH_FRACTION,
    GLOBAL_GROUP_FRACTIONS,
    LOCAL_CONTROL_FRACTION,
    FFDescriptor,
    FFInventory,
)


class TestPopulations:
    def test_fractions_sum_to_one(self):
        total = DATAPATH_FRACTION + LOCAL_CONTROL_FRACTION + sum(
            GLOBAL_GROUP_FRACTIONS.values()
        )
        assert total == pytest.approx(1.0)

    def test_table1_group_fractions(self):
        # Exact values from Table 1's "% FFs" column.
        assert GLOBAL_GROUP_FRACTIONS[1] == pytest.approx(0.0024)
        assert GLOBAL_GROUP_FRACTIONS[4] == pytest.approx(0.0236)
        assert GLOBAL_GROUP_FRACTIONS[7] == pytest.approx(0.0009)
        assert len(GLOBAL_GROUP_FRACTIONS) == 10

    def test_sec431_critical_class_is_9_8_percent(self):
        # Groups 1 and 3 plus local control FFs = 9.8% of all FFs.
        critical = (
            LOCAL_CONTROL_FRACTION
            + GLOBAL_GROUP_FRACTIONS[1]
            + GLOBAL_GROUP_FRACTIONS[3]
        )
        assert critical == pytest.approx(0.098)

    def test_upper_exponent_population_close_to_5_5_percent(self):
        # 2 of 32 bits of each datapath register: ~5.3% of all FFs, close
        # to the paper's 5.5%.
        upper = DATAPATH_FRACTION * 2 / 32
        assert 0.04 < upper < 0.07


class TestSampling:
    def test_category_mix_matches_population(self):
        inv = FFInventory()
        rng = np.random.default_rng(0)
        counts = {"datapath": 0, "local_control": 0, "global_control": 0}
        n = 20_000
        for _ in range(n):
            counts[inv.sample(rng).category] += 1
        assert counts["datapath"] / n == pytest.approx(DATAPATH_FRACTION, abs=0.02)
        assert counts["local_control"] / n == pytest.approx(LOCAL_CONTROL_FRACTION, abs=0.02)

    def test_datapath_bits_uniform(self):
        inv = FFInventory()
        rng = np.random.default_rng(1)
        bits = [inv.sample(rng).bit for _ in range(5000)
                if inv.sample(rng).category == "datapath"]
        bits = [b for b in bits if b is not None]
        assert min(bits) == 0 and max(bits) == 31

    def test_global_groups_cover_all_ten(self):
        inv = FFInventory()
        rng = np.random.default_rng(2)
        groups = set()
        for _ in range(50_000):
            ff = inv.sample(rng)
            if ff.category == "global_control":
                groups.add(ff.group)
        assert groups == set(range(1, 11))

    def test_feedback_fraction(self):
        inv = FFInventory(feedback_fraction=1.0)
        rng = np.random.default_rng(3)
        assert all(inv.sample(rng).has_feedback for _ in range(100))
        inv0 = FFInventory(feedback_fraction=0.0)
        assert not any(inv0.sample(rng).has_feedback for _ in range(100))

    def test_invalid_feedback_fraction(self):
        with pytest.raises(ValueError):
            FFInventory(feedback_fraction=1.5)

    def test_category_fractions_reported(self):
        fracs = FFInventory().category_fractions()
        assert set(fracs) == {"datapath", "local_control", "global_control"}
        assert sum(fracs.values()) == pytest.approx(1.0)


class TestDescriptor:
    def test_upper_exponent_detection(self):
        assert FFDescriptor("datapath", bit=30).is_upper_exponent()
        assert FFDescriptor("datapath", bit=29).is_upper_exponent()
        assert not FFDescriptor("datapath", bit=28).is_upper_exponent()
        assert not FFDescriptor("datapath", bit=31).is_upper_exponent()
        assert not FFDescriptor("local_control").is_upper_exponent()
        assert not FFDescriptor("global_control", group=1).is_upper_exponent()
