"""Tests for optimizers and their history terms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, ConstantSchedule, CosineSchedule, RMSProp, WarmupSchedule
from repro.optim.base import max_abs


def make_param(values) -> Parameter:
    return Parameter(np.asarray(values, dtype=np.float32))


class TestSGD:
    def test_plain_update(self):
        p = make_param([1.0])
        p.grad[:] = 0.5
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(0.95)

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad[:] = 1.0
        opt.step()  # v=1, w=-1
        p.grad[:] = 1.0
        opt.step()  # v=1.5, w=-2.5
        assert p.data[0] == pytest.approx(-2.5)
        assert opt.velocity[0][0] == pytest.approx(1.5)

    def test_history_flags(self):
        p = make_param([0.0])
        assert not SGD([p], momentum=0.0).normalizes_gradients()
        assert SGD([p], momentum=0.0).history_magnitude() == 0.0
        assert SGD([p], momentum=0.0).first_moment_arrays() == []
        with_momentum = SGD([p], momentum=0.9)
        assert len(with_momentum.first_moment_arrays()) == 1


class TestAdam:
    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_formula(self, g1, g2, g3):
        """Three steps of Adam on a scalar match Eq. 1 computed by hand."""
        p = make_param([1.0])
        opt = Adam([p], lr=0.1, beta1=0.9, beta2=0.999, eps=1e-8)
        m = v = 0.0
        w = 1.0
        for t, g in enumerate([g1, g2, g3], start=1):
            p.grad[:] = np.float32(g)
            opt.step()
            gf = float(np.float32(g))
            m = 0.9 * m + 0.1 * gf
            v = 0.999 * v + 0.001 * gf * gf
            m_hat = m / (1 - 0.9**t)
            v_hat = v / (1 - 0.999**t)
            w = w - 0.1 * m_hat / (np.sqrt(v_hat) + 1e-8)
            assert p.data[0] == pytest.approx(w, rel=1e-3, abs=1e-5)
            opt.zero_grad()

    def test_update_bounded_by_lr(self):
        """Adam normalizes: even a huge single gradient moves weights by
        ~lr, which is why weight-update faults are needed to create large
        weights under Adam (Sec. 4.2.2)."""
        p = make_param([0.0])
        opt = Adam([p], lr=0.01)
        p.grad[:] = 1e20
        opt.step()
        assert abs(p.data[0]) < 0.1

    def test_huge_gradient_inflates_history(self):
        """The SlowDegrade precondition: one faulty gradient inflates m
        and v, which then persist across iterations."""
        p = make_param([0.0])
        opt = Adam([p], lr=0.01)
        p.grad[:] = 1e15
        opt.step()
        assert opt.history_magnitude() > 1e14
        # After the fault, v decays at beta2 per iteration — slowly.
        opt.zero_grad()
        opt.step()
        assert float(opt.v[0][0]) == pytest.approx(0.999 * (1e15**2) * 0.001, rel=1e-2)

    def test_history_magnitude_inf(self):
        p = make_param([0.0])
        opt = Adam([p])
        p.grad[:] = 1e30
        opt.step()  # v overflows float32
        assert opt.history_magnitude() == float("inf")

    def test_moment_accessors(self):
        p = make_param([0.0])
        opt = Adam([p])
        assert len(opt.first_moment_arrays()) == 1
        assert len(opt.second_moment_arrays()) == 1
        assert opt.normalizes_gradients()


class TestAdamW:
    def test_weight_decay_applied(self):
        p = make_param([10.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad[:] = 0.0
        opt.step()
        # No gradient: update is pure decoupled decay lr*wd*w = 0.5.
        assert p.data[0] == pytest.approx(10.0 - 0.1 * 0.5 * 10.0, rel=1e-4)


class TestRMSProp:
    def test_normalizes(self):
        p = make_param([0.0])
        opt = RMSProp([p], lr=0.1)
        p.grad[:] = 100.0
        opt.step()
        # Update ~ lr * g / sqrt((1-rho) g^2) = lr / sqrt(0.1).
        assert abs(p.data[0]) == pytest.approx(0.1 / np.sqrt(0.1), rel=1e-2)
        assert opt.normalizes_gradients()
        assert len(opt.second_moment_arrays()) == 1


class TestStateDict:
    @pytest.mark.parametrize("factory", [
        lambda p: Adam(p, lr=0.01),
        lambda p: SGD(p, lr=0.1, momentum=0.9),
        lambda p: RMSProp(p, lr=0.01),
    ])
    def test_round_trip(self, factory, rng):
        params = [make_param(rng.normal(size=(4, 3)))]
        opt = factory(params)
        for _ in range(3):
            params[0].grad[:] = rng.normal(size=(4, 3)).astype(np.float32)
            opt.step()
        state = opt.state_dict()
        snapshot = {k: [a.copy() for a in v] if isinstance(v, list) else v
                    for k, v in state.items()}
        params[0].grad[:] = 1.0
        opt.step()
        opt.load_state_dict(snapshot)
        assert opt.iteration == 3
        for name, arrays in opt._slot_arrays().items():
            for a, b in zip(arrays, snapshot[name]):
                assert np.array_equal(a, b)


class TestUpdateHook:
    def test_hook_modifies_update(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0)
        opt.set_update_hook(lambda u, info: u * 0.0)
        p.grad[:] = 5.0
        opt.step()
        assert p.data[0] == 0.0

    def test_hook_info(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0)
        seen = {}
        opt.set_update_hook(lambda u, info: seen.update(info) or u)
        p.grad[:] = 1.0
        opt.step()
        assert seen["index"] == 0
        assert seen["param"] is p


class TestMaxAbs:
    def test_empty(self):
        assert max_abs([]) == 0.0
        assert max_abs([np.empty(0, dtype=np.float32)]) == 0.0

    def test_inf_and_nan_map_to_inf(self):
        assert max_abs([np.array([1.0, np.inf])]) == float("inf")
        assert max_abs([np.array([np.nan])]) == float("inf")

    def test_normal(self):
        assert max_abs([np.array([-3.0, 2.0]), np.array([1.0])]) == 3.0


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule(0.1).lr_at(1000) == 0.1

    def test_cosine_endpoints(self):
        sched = CosineSchedule(1.0, total_steps=100, min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(100) == pytest.approx(0.1)
        assert sched.lr_at(200) == pytest.approx(0.1)

    def test_warmup_rises_then_decays(self):
        sched = WarmupSchedule(1.0, warmup_steps=10)
        assert sched.lr_at(5) < sched.lr_at(10)
        assert sched.lr_at(40) < sched.lr_at(10)

    def test_apply_sets_lr(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0)
        CosineSchedule(1.0, 10).apply(opt, 10)
        assert opt.lr == pytest.approx(0.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
