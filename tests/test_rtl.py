"""Tests for the micro-RTL MAC-array simulator."""

import numpy as np
import pytest

from repro.accelerator.rtl import MACArraySimulator, RTLFault
from repro.tensor.dtypes import to_bfloat16


@pytest.fixture
def sim():
    return MACArraySimulator()


@pytest.fixture
def operands(rng):
    x = rng.normal(size=(6, 96)).astype(np.float32)
    w = rng.normal(0, 0.1, size=(96, 24)).astype(np.float32)
    return x, w


class TestGoldenExecution:
    def test_matches_bf16_reference(self, sim, operands):
        x, w = operands
        out = sim.run(x, w)
        ref = to_bfloat16(x).astype(np.float32) @ to_bfloat16(w).astype(np.float32)
        assert np.allclose(out, ref, rtol=1e-3, atol=1e-3)

    def test_shape_mismatch_raises(self, sim):
        with pytest.raises(ValueError):
            sim.run(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_schedule_geometry(self, sim):
        # 24 features / 16 lanes = 2 tiles; 96 K / 64 chunk = 2 chunks.
        assert sim.num_micro_cycles(6, 96, 24) == 2 * 6 * 2
        assert sim.micro_to_arch_cycle(3, 6, 96, 24) == 1
        assert sim.write_micro_cycle(0, 96) == 1

    def test_deterministic(self, sim, operands):
        x, w = operands
        assert np.array_equal(sim.run(x, w), sim.run(x, w))


class TestFaultBehaviors:
    def test_acc_flip_at_write_changes_one_element(self, sim, operands):
        x, w = operands
        golden = sim.run(x, w)
        # Inject at the final micro-cycle of architectural cycle 0.
        fault = RTLFault("acc", cycle=sim.write_micro_cycle(0, 96), index=3, bit=30)
        faulty = sim.run(x, w, fault)
        diff = sim.diff_positions(golden, faulty)
        assert diff.size == 1
        # Arch cycle 0 = tile 0, row 0 -> element (0, lane 3).
        assert diff[0] == 3

    def test_acc_flip_value_is_bit_flip_of_golden(self, sim, operands):
        from repro.tensor.bits import flip_float32_bit

        x, w = operands
        golden = sim.run(x, w)
        fault = RTLFault("acc", cycle=sim.write_micro_cycle(0, 96), index=3, bit=30)
        faulty = sim.run(x, w, fault)
        expected = flip_float32_bit(golden[0, 3], 30)
        assert faulty[0, 3] == expected

    def test_out_valid_suppression_zeroes_tile(self, sim, operands):
        """Group 2 in hardware: a suppressed write leaves the buffer's
        initial zeros for the 16 lanes of that cycle."""
        x, w = operands
        fault = RTLFault("out_valid", cycle=sim.write_micro_cycle(0, 96), bit=0)
        faulty = sim.run(x, w, fault)
        assert np.all(faulty[0, :16] == 0.0)
        assert np.any(faulty[0, 16:] != 0.0)

    def test_out_addr_flip_moves_tile(self, sim, operands):
        """Group 4: outputs written to a wrong address, relative positions
        kept; the intended row keeps stale zeros.

        The fault targets the *last* row of the tile so the aliased write
        lands after the alias row's own correct write and persists (a
        fault on an earlier row would be overwritten by later traffic —
        hardware masking)."""
        x, w = operands
        golden = sim.run(x, w)
        # Tile 0, row 5 (last row): 5 ^ 1 = 4, already written earlier.
        fault = RTLFault("out_addr", cycle=sim.write_micro_cycle(5, 96), bit=0)
        faulty = sim.run(x, w, fault)
        assert np.all(faulty[5, :16] == 0.0)
        assert np.allclose(faulty[4, :16], golden[5, :16])

    def test_out_addr_flip_on_early_row_masked_by_overwrite(self, sim, operands):
        """The same fault on row 0: the alias row (2) is rewritten later
        by its own correct write, so only the hole at row 0 remains."""
        x, w = operands
        golden = sim.run(x, w)
        fault = RTLFault("out_addr", cycle=sim.write_micro_cycle(0, 96), bit=1)
        faulty = sim.run(x, w, fault)
        assert np.all(faulty[0, :16] == 0.0)
        assert np.allclose(faulty[2, :16], golden[2, :16])

    def test_in_valid_zero_inputs_reduces_output(self, sim, operands):
        """Groups 7/8: a chunk of inputs read as zeros removes partial
        sums from the affected outputs."""
        x, w = operands
        golden = sim.run(x, w)
        fault = RTLFault("in_valid", cycle=0, bit=1)  # invalid->valid: zeros
        faulty = sim.run(x, w, fault)
        diff = sim.diff_positions(golden, faulty)
        # Only arch cycle 0's lanes (row 0, tile 0) can differ.
        assert diff.size > 0
        assert np.all(diff < 16)
        # The damaged outputs equal the contribution of the second chunk.
        partial = to_bfloat16(x[0:1, 64:]).astype(np.float32) @ to_bfloat16(
            w[64:, :16]
        ).astype(np.float32)
        assert np.allclose(faulty[0, :16], partial[0], rtol=1e-3, atol=1e-3)

    def test_in_valid_stale_reuses_previous_operands(self, sim, operands):
        """Groups 9/10: valid->invalid makes the datapath reuse stale
        operand registers."""
        x, w = operands
        golden = sim.run(x, w)
        fault = RTLFault("in_valid", cycle=1, bit=0)  # second chunk stale
        faulty = sim.run(x, w, fault)
        diff = sim.diff_positions(golden, faulty)
        assert diff.size > 0
        assert np.all(diff < 16)

    def test_a_reg_flip_hits_full_lane_row(self, sim, operands):
        x, w = operands
        golden = sim.run(x, w)
        fault = RTLFault("a_reg", cycle=0, index=5, bit=14)  # upper exponent
        faulty = sim.run(x, w, fault)
        diff = sim.diff_positions(golden, faulty)
        assert 1 <= diff.size <= 16
        assert np.all(diff < 16)

    def test_mantissa_flip_can_be_masked(self, sim, operands):
        """Low-order bfloat16 mantissa flips of tiny operands can vanish
        below accumulator resolution — hardware masking."""
        x, w = operands
        fault = RTLFault("a_reg", cycle=0, index=5, bit=0)
        faulty = sim.run(x, w, fault)
        golden = sim.run(x, w)
        # Either masked or a small perturbation of cycle 0's lanes.
        diff = sim.diff_positions(golden, faulty)
        assert np.all(diff < 16)

    def test_invalid_ff_name(self):
        with pytest.raises(ValueError):
            RTLFault("bogus", cycle=0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            RTLFault("acc", cycle=0, duration=0)


class TestDiffPositions:
    def test_nan_equal_nan(self, sim):
        a = np.array([[np.nan, 1.0]])
        b = np.array([[np.nan, 2.0]])
        assert sim.diff_positions(a, b).tolist() == [1]
