"""Shared fixtures for the test suite.

Tests run at the "tiny" workload scale; anything that trains does so for
a handful of iterations.  Trainer-producing fixtures are factories so
each test gets fresh, mutable state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_resnet_spec():
    return build_workload("resnet", size="tiny", seed=0)


@pytest.fixture
def make_trainer():
    """Factory building a fresh trainer for a tiny workload."""

    def factory(workload: str = "resnet", num_devices: int = 2, seed: int = 0,
                test_every: int = 0, **kwargs) -> SyncDataParallelTrainer:
        spec = build_workload(workload, size="tiny", seed=seed)
        return SyncDataParallelTrainer(
            spec, num_devices=num_devices, seed=seed, test_every=test_every, **kwargs
        )

    return factory


def directional_gradcheck(model, x, loss_fn, y, rng, eps: float = 1e-2) -> float:
    """Relative error between analytic and numeric directional derivative.

    More robust than per-element checks in float32: the directional
    derivative has O(1) magnitude, so float noise stays small relative to
    the signal.
    """
    model.train()
    loss_fn.forward(model.forward(x), y)
    model.zero_grad()
    model.backward(loss_fn.backward())
    params = list(model.parameters())
    dirs = [rng.normal(size=p.data.shape).astype(np.float32) for p in params]
    analytic = sum(float(np.sum(p.grad * d)) for p, d in zip(params, dirs))
    orig = [p.data.copy() for p in params]
    for p, d, o in zip(params, dirs, orig):
        p.data = o + eps * d
    l1 = loss_fn.forward(model.forward(x), y)
    for p, d, o in zip(params, dirs, orig):
        p.data = o - eps * d
    l2 = loss_fn.forward(model.forward(x), y)
    for p, o in zip(params, orig):
        p.data = o
    numeric = (l1 - l2) / (2 * eps)
    return abs(numeric - analytic) / max(1e-8, abs(numeric) + abs(analytic))
