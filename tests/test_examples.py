"""Smoke tests for the example scripts.

Full example runs take tens of seconds each; here we verify every script
compiles and that the cheapest one executes end to end.  The benchmark
harness and the examples share the same underlying API paths, so deeper
behaviour is covered there.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "mitigation_demo.py", "fault_campaign.py",
            "rtl_validation.py", "workload_zoo.py",
            "multi_fault_study.py"} <= names


def test_rtl_validation_example_runs():
    """The fastest example (~5s): run it for real and check the verdict."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "rtl_validation.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "match rate on non-masked faults: 100.0%" in result.stdout
