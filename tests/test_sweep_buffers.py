"""Tests for the sweep driver and the on-chip buffer model."""

import pytest

from repro.accelerator.buffers import BufferModel, conv_footprint
from repro.accelerator.config import AcceleratorConfig
from repro.core.faults import Campaign
from repro.core.faults.sweep import SweepAxis, run_sweep
from repro.workloads import build_workload


class TestSweep:
    @pytest.fixture(scope="class")
    def campaign(self):
        spec = build_workload("resnet", size="tiny", seed=0)
        campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=6,
                            horizon=12, inject_window=4, test_every=6)
        campaign.prepare()
        return campaign

    def test_grid_cells(self, campaign):
        result = run_sweep(campaign, [
            SweepAxis("iteration", [7, 9]),
            SweepAxis("seed", [1, 2, 3]),
        ])
        assert len(result.cells) == 6
        assert (7, 1) in result.cells

    def test_marginal_reduction(self, campaign):
        result = run_sweep(campaign, [
            SweepAxis("iteration", [7, 9]),
            SweepAxis("seed", [1, 2]),
        ])
        rates = result.unexpected_rate_by("iteration")
        assert set(rates) == {7, 9}
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_site_axis(self, campaign):
        result = run_sweep(campaign, [
            SweepAxis("site", [("1.conv1", "forward"), ("1.conv1", "weight_grad")]),
        ])
        assert len(result.cells) == 2

    def test_bit_axis_overrides_group(self, campaign):
        result = run_sweep(campaign, [SweepAxis("bit", [3, 30])])
        for key, experiment in result.cells.items():
            assert experiment.fault.ff.category == "datapath"
            assert experiment.fault.ff.bit == key[0]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepAxis("iteration", [])


class TestBufferModel:
    def test_small_tile_fits(self):
        fp = conv_footprint(8, 16, 3, 16, 16, batch=8)
        model = BufferModel()
        assert model.fits(fp)
        assert model.dram_round_trips(fp) == 1
        assert model.input_read_cycles(fp) == "buffer"

    def test_large_tile_streams_from_dram(self):
        fp = conv_footprint(256, 256, 3, 64, 64, batch=8)
        model = BufferModel()
        assert not model.fits(fp)
        assert model.dram_round_trips(fp) > 1
        assert model.input_read_cycles(fp) == "dram"

    def test_round_trips_monotone_in_size(self):
        model = BufferModel()
        small = conv_footprint(16, 16, 3, 32, 32)
        large = conv_footprint(64, 64, 3, 64, 64)
        assert model.dram_round_trips(small) <= model.dram_round_trips(large)

    def test_feedback_bound_clamped(self):
        model = BufferModel()
        tiny = conv_footprint(1, 1, 1, 2, 2)
        big = conv_footprint(64, 64, 3, 32, 32)
        assert 1 <= model.max_feedback_cycles(tiny)
        assert model.max_feedback_cycles(big) == model.config.max_feedback_loop

    def test_capacity_follows_config(self):
        small_cfg = AcceleratorConfig(buffer_kb=1)
        fp = conv_footprint(8, 8, 3, 16, 16)
        assert not BufferModel(small_cfg).fits(fp)
        assert BufferModel().capacity_bytes == 512 * 1024

    def test_footprint_totals(self):
        fp = conv_footprint(2, 4, 3, 8, 8, batch=2)
        assert fp.input_bytes == 2 * 2 * 8 * 8 * 2      # bf16 inputs
        assert fp.weight_bytes == 4 * 2 * 9 * 2         # bf16 weights
        assert fp.output_bytes == 2 * 4 * 8 * 8 * 4     # fp32 outputs
        assert fp.total_bytes == (fp.input_bytes + fp.weight_bytes
                                  + fp.output_bytes + fp.partial_sum_bytes)
