"""Tests for Algorithm 1 bounds and the hardware-failure detector."""

import numpy as np
import pytest

from repro.core.mitigation import (
    DetectionBounds,
    HardwareFailureDetector,
    derive_bounds_for_trainer,
    derive_history_bound,
    derive_mvar_bound,
)
from repro.workloads import build_workload


class TestHistoryBound:
    def test_formula(self, tiny_resnet_spec):
        """Bound = 20 * sqrt(max n_l) / m.  The worst layer of the tiny
        ResNet is the stem conv: n_l = batch * 16 * 16 output positions."""
        model = tiny_resnet_spec.build_model(0)
        x = tiny_resnet_spec.train_data.inputs[:8]
        bound = derive_history_bound(model, x, batch_size=32)
        worst_n_l = 8 * 16 * 16  # batch shard x spatial positions
        assert bound == pytest.approx(20 * np.sqrt(worst_n_l) / 32)

    def test_scales_inversely_with_batch(self, tiny_resnet_spec):
        model = tiny_resnet_spec.build_model(0)
        x = tiny_resnet_spec.train_data.inputs[:8]
        b32 = derive_history_bound(model, x, batch_size=32)
        b64 = derive_history_bound(model, x, batch_size=64)
        assert b64 == pytest.approx(b32 / 2)

    def test_invalid_batch(self, tiny_resnet_spec):
        model = tiny_resnet_spec.build_model(0)
        with pytest.raises(ValueError):
            derive_history_bound(model, tiny_resnet_spec.train_data.inputs[:4], 0)


class TestMvarBound:
    def test_no_batchnorm_returns_zero(self):
        spec = build_workload("nfnet", size="tiny", seed=0)
        assert derive_mvar_bound(spec.build_model(0), lr=1e-3) == 0.0

    def test_positive_for_bn_models(self, tiny_resnet_spec):
        bound = derive_mvar_bound(tiny_resnet_spec.build_model(0), lr=3e-3)
        assert bound >= 1.0

    def test_grows_with_lr(self, tiny_resnet_spec):
        model = tiny_resnet_spec.build_model(0)
        assert derive_mvar_bound(model, lr=0.1) > derive_mvar_bound(model, lr=1e-4)


class TestBoundsSeparation:
    def test_fault_free_values_within_bounds(self, make_trainer):
        """The whole point of Algorithm 1: fault-free history/mvar values
        never approach the bounds, while Table 4's faulty magnitudes
        (1e8-1e38) exceed them by many orders."""
        trainer = make_trainer(num_devices=2)
        trainer.train(30)
        bounds = derive_bounds_for_trainer(trainer, slack=100.0)
        from repro.optim.base import max_abs

        first = max_abs(trainer.optimizer.first_moment_arrays())
        second = max_abs(trainer.optimizer.second_moment_arrays())
        assert first < bounds.effective_history_bound
        assert second < bounds.effective_second_moment_bound
        assert trainer.mvar_magnitude() < bounds.effective_mvar_bound
        # Margin to the smallest Table 4 magnitude (2.7e8) is enormous.
        assert bounds.effective_history_bound < 2.7e8 / 100
        assert bounds.effective_mvar_bound < 6.5e16 / 100

    def test_effective_bounds(self):
        bounds = DetectionBounds(history_bound=10.0, mvar_bound=2.0, slack=5.0)
        assert bounds.effective_history_bound == 50.0
        assert bounds.effective_second_moment_bound == 2500.0
        assert bounds.effective_mvar_bound == 10.0


class TestDetector:
    def test_no_false_positives_fault_free(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        detector = HardwareFailureDetector()
        trainer.add_hook(detector)
        trainer.train(40)
        assert not detector.fired
        assert detector.checks == 40

    def test_detects_history_corruption(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        detector = HardwareFailureDetector()
        trainer.add_hook(detector)

        class CorruptHistory:
            def after_backward(self, tr, iteration):
                if iteration == 5:
                    next(iter(tr.master.parameters())).grad[:] = 1e12

        trainer.hooks.insert(0, CorruptHistory())
        trainer.train(8)
        assert detector.fired
        event = detector.events[0]
        assert event.condition in ("first_moment", "second_moment")
        assert detector.detection_latency(5) == 0

    def test_detects_mvar_corruption(self, make_trainer):
        from repro.nn.normalization import batchnorm_layers

        trainer = make_trainer(num_devices=2)
        detector = HardwareFailureDetector()
        trainer.add_hook(detector)

        class CorruptMvar:
            def after_backward(self, tr, iteration):
                if iteration == 4:
                    batchnorm_layers(tr.replicas[1])[0].moving_var[:] = 1e20

        trainer.hooks.insert(0, CorruptMvar())
        trainer.train(7)
        assert detector.fired
        assert detector.events[0].condition == "mvar"
        assert detector.detection_latency(4) == 0

    def test_detects_inf_mvar(self, make_trainer):
        from repro.nn.normalization import batchnorm_layers

        trainer = make_trainer(num_devices=2)
        detector = HardwareFailureDetector()
        trainer.add_hook(detector)

        class CorruptMvar:
            def after_backward(self, tr, iteration):
                if iteration == 3:
                    batchnorm_layers(tr.replicas[0])[0].moving_var[:] = np.inf

        trainer.hooks.insert(0, CorruptMvar())
        trainer.train(5)
        assert detector.fired

    def test_no_mvar_check_without_bn(self, make_trainer):
        trainer = make_trainer(workload="nfnet", num_devices=2)
        detector = HardwareFailureDetector()
        trainer.add_hook(detector)
        trainer.train(10)
        assert not detector.fired

    def test_event_describe(self):
        from repro.core.mitigation.detector import DetectionEvent

        event = DetectionEvent(7, "mvar", 1e20, 100.0)
        text = event.describe()
        assert "iteration 7" in text and "mvar" in text

    def test_detection_recorded_on_trainer(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        detector = HardwareFailureDetector()
        trainer.add_hook(detector)

        class Corrupt:
            def after_backward(self, tr, iteration):
                if iteration == 2:
                    next(iter(tr.master.parameters())).grad[:] = 1e15

        trainer.hooks.insert(0, Corrupt())
        trainer.train(4)
        assert 2 in trainer.record.detections
