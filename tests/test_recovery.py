"""Tests for two-iteration re-execution recovery (Sec. 5.2)."""

import numpy as np
import pytest

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults import FaultInjector, HardwareFault, OpSite
from repro.core.mitigation import (
    HardwareFailureDetector,
    MitigationHook,
    RecoveryError,
    RecoveryManager,
)


def history_fault(iteration=5, seed=3):
    """A backward-pass group-1 fault that corrupts optimizer history."""
    ff = FFDescriptor("global_control", group=1, has_feedback=True)
    return HardwareFault(ff=ff, site=OpSite("1.conv1", "weight_grad"),
                         iteration=iteration, device=1, seed=seed)


class ModerateCorruption:
    """Synthetic *transient* fault: corrupts one gradient once.

    One-shot by construction — a transient hardware fault does not recur
    when the iteration is re-executed, so the hook must not either.
    """

    def __init__(self, iteration: int, scale: float = 1e10):
        self.iteration = int(iteration)
        self.scale = float(scale)
        self.fired = False

    def after_backward(self, trainer, iteration):
        if iteration == self.iteration and not self.fired:
            self.fired = True
            param = next(iter(trainer.master.parameters()))
            param.grad[:] = self.scale


class TestSnapshotRewind:
    def test_rewind_restores_exact_state(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        recovery = RecoveryManager(strategy="snapshot")
        trainer.add_hook(recovery)
        trainer.train(5)
        state_at_3 = None
        # Capture a reference by replaying a fresh trainer to iteration 3.
        ref = make_trainer(num_devices=2)
        ref.train(3)
        state_at_3 = ref.master.state_dict()
        resume = recovery.rewind(trainer, iterations=2, detected_at=4)
        assert resume == 3
        assert trainer.iteration == 3
        now = trainer.master.state_dict()
        for key in state_at_3:
            assert np.array_equal(now[key], state_at_3[key]), key

    def test_rewind_truncates_record(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        recovery = RecoveryManager(strategy="snapshot")
        trainer.add_hook(recovery)
        trainer.train(6)
        recovery.rewind(trainer, detected_at=5)
        assert trainer.record.num_iterations == 4  # iterations 0-3 kept
        assert trainer.record.recoveries == [4]

    def test_rewind_without_snapshots_fails(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        recovery = RecoveryManager(strategy="snapshot")
        with pytest.raises(RecoveryError):
            recovery.rewind(trainer, detected_at=0)

    def test_recovery_limit(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        recovery = RecoveryManager(strategy="snapshot", max_recoveries=1)
        trainer.add_hook(recovery)
        trainer.train(4)
        recovery.rewind(trainer, detected_at=3)
        with pytest.raises(RecoveryError):
            recovery.rewind(trainer, detected_at=3)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            RecoveryManager(strategy="magic")


class TestArithmeticRewind:
    def test_inverts_adam_step_closely(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        recovery = RecoveryManager(strategy="arithmetic")
        trainer.add_hook(recovery)
        trainer.train(4)
        reference = make_trainer(num_devices=2)
        reference.train(3)
        ref_state = reference.master.state_dict()
        resume = recovery.rewind(trainer, iterations=1, detected_at=3)
        assert resume == 3
        now = trainer.master.state_dict()
        for key in ref_state:
            a, b = now[key], ref_state[key]
            scale = np.abs(b).max() + 1e-6
            assert np.abs(a - b).max() / scale < 1e-3, key

    def test_overflowed_state_not_invertible(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        recovery = RecoveryManager(strategy="arithmetic")
        trainer.add_hook(recovery)
        trainer.hooks.insert(0, ModerateCorruption(iteration=3, scale=1e30))
        trainer.train(5)
        with pytest.raises(RecoveryError, match="not invertible"):
            recovery.rewind(trainer, detected_at=4)


class TestMitigationEndToEnd:
    def test_detect_recover_continue(self, make_trainer):
        """The full Sec. 5 pipeline: a history-corrupting fault is
        detected within two iterations, two iterations are re-executed,
        and training finishes with fault-free-level accuracy."""
        trainer = make_trainer(num_devices=2, test_every=10)
        detector = HardwareFailureDetector()
        mitigation = MitigationHook(detector, RecoveryManager(strategy="snapshot"))
        injector = FaultInjector(history_fault(iteration=10, seed=3))
        trainer.add_hook(injector)
        trainer.add_hook(mitigation)
        trainer.train(50)
        rec = trainer.record

        baseline = make_trainer(num_devices=2, test_every=10)
        baseline.train(50)

        assert detector.fired
        assert detector.detection_latency(10) <= 2
        assert rec.recoveries  # re-execution happened
        assert rec.nonfinite_at is None
        # History values are clean again after recovery.
        assert trainer.optimizer.history_magnitude() < 1e3
        assert rec.final_train_accuracy() >= baseline.record.final_train_accuracy() - 0.1

    def test_mitigated_run_matches_unfaulted_trajectory(self, make_trainer):
        """After recovery, the re-executed iterations see the same batches
        and random draws, so the trajectory equals the fault-free run."""
        trainer = make_trainer(num_devices=2)
        detector = HardwareFailureDetector()
        mitigation = MitigationHook(detector, RecoveryManager(strategy="snapshot"))
        trainer.add_hook(ModerateCorruption(iteration=6, scale=1e12))
        trainer.add_hook(mitigation)
        trainer.train(12)

        clean = make_trainer(num_devices=2)
        clean.train(12)
        for (n1, p1), (n2, p2) in zip(
            trainer.master.named_parameters(), clean.master.named_parameters()
        ):
            assert np.allclose(p1.data, p2.data, atol=1e-5), n1

    def test_arithmetic_strategy_end_to_end(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        detector = HardwareFailureDetector()
        mitigation = MitigationHook(detector, RecoveryManager(strategy="arithmetic"))
        trainer.add_hook(ModerateCorruption(iteration=6, scale=1e10))
        trainer.add_hook(mitigation)
        trainer.train(15)
        assert detector.fired
        assert trainer.record.recoveries
        assert trainer.optimizer.history_magnitude() < 1e3
        assert trainer.record.final_train_accuracy() > 0.3

    def test_inf_nan_fault_recovered(self, make_trainer):
        """Even a fault that would make the loss non-finite is caught and
        rolled back: the training loop continues instead of stopping."""
        trainer = make_trainer(num_devices=2)
        detector = HardwareFailureDetector()
        mitigation = MitigationHook(detector, RecoveryManager(strategy="snapshot"))
        trainer.add_hook(ModerateCorruption(iteration=5, scale=1e38))
        trainer.add_hook(mitigation)
        rec = trainer.train(12)
        assert rec.nonfinite_at is None
        assert rec.recoveries
        assert rec.num_iterations == 12
