"""Tests for the benchmark regression tracker (repro.bench)."""

import json

import pytest

from repro.bench import (
    HISTORY_SCHEMA_VERSION,
    HistoryFormatError,
    compare,
    metric_direction,
    read_history,
    record_artifacts,
    run_provenance,
)
from repro.cli import main


def _artifact(path, **metrics):
    path.write_text(json.dumps(metrics), encoding="utf-8")
    return path


def _record(tmp_path, history, sha, **metrics):
    artifact = _artifact(tmp_path / "BENCH_demo.json", **metrics)
    record_artifacts([artifact], history,
                     provenance={"git_sha": sha, "host": "testhost"})


# ----------------------------------------------------------------------
# Direction inference
# ----------------------------------------------------------------------
class TestMetricDirection:
    @pytest.mark.parametrize("name,expected", [
        ("iterations_per_s", "higher"),       # not a ns_per_* cost
        ("sampled_iterations_per_s", "higher"),
        ("throughput", "higher"),
        ("speedup_vs_serial", "higher"),
        ("match_rate", "higher"),
        ("overhead_fraction", "lower"),
        ("overhead_per_s", "lower"),          # overhead wins over per_s
        ("ns_per_call", "lower"),
        ("elapsed_seconds", "lower"),
        ("detection_latency", "lower"),
        ("num_devices", "none"),
        ("budget_fraction", "none"),
        ("events_buffered", "none"),
    ])
    def test_direction(self, name, expected):
        assert metric_direction(name) == expected


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
class TestRecord:
    def test_creates_header_and_extracts_numeric_metrics(self, tmp_path):
        history = tmp_path / "BENCH_HISTORY.jsonl"
        artifact = _artifact(tmp_path / "BENCH_smoke.json",
                             iterations_per_s=100.0, num_devices=4,
                             label="ignored", ok=True)
        records = record_artifacts([artifact], history,
                                   provenance={"git_sha": "abc"})
        assert len(records) == 1
        assert records[0]["bench"] == "smoke"
        # Strings and bools are not metrics.
        assert records[0]["metrics"] == {"iterations_per_s": 100.0,
                                         "num_devices": 4.0}
        header, benches = read_history(history)
        assert header["schema"] == HISTORY_SCHEMA_VERSION
        assert len(benches) == 1

    def test_embedded_artifact_provenance_is_preserved(self, tmp_path):
        history = tmp_path / "h.jsonl"
        artifact = tmp_path / "BENCH_x.json"
        artifact.write_text(json.dumps(
            {"metric": 1.0,
             "provenance": {"git_sha": "artifact-sha"}}), encoding="utf-8")
        records = record_artifacts([artifact], history,
                                   provenance={"git_sha": "run-sha"})
        assert records[0]["provenance"]["git_sha"] == "run-sha"
        assert records[0]["artifact_provenance"]["git_sha"] == "artifact-sha"
        # The provenance block itself is not a metric.
        assert records[0]["metrics"] == {"metric": 1.0}

    def test_appends_without_duplicate_header(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _record(tmp_path, history, "sha1", metric=1.0)
        _record(tmp_path, history, "sha2", metric=2.0)
        lines = history.read_text(encoding="utf-8").splitlines()
        headers = [ln for ln in lines if '"header"' in ln]
        assert len(headers) == 1 and len(lines) == 3

    def test_unreadable_or_non_object_artifacts_raise(self, tmp_path):
        history = tmp_path / "h.jsonl"
        with pytest.raises(HistoryFormatError):
            record_artifacts([tmp_path / "missing.json"], history)
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(HistoryFormatError):
            record_artifacts([bad], history)


class TestReadHistory:
    def test_torn_tail_is_tolerated(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _record(tmp_path, history, "sha1", metric=1.0)
        with open(history, "a", encoding="utf-8") as fh:
            fh.write('{"record":"bench","bench":"demo","met')
        _, records = read_history(history)
        assert len(records) == 1

    def test_schema_and_header_validation(self, tmp_path):
        history = tmp_path / "h.jsonl"
        history.write_text(json.dumps(
            {"record": "header", "schema": 999}) + "\n", encoding="utf-8")
        with pytest.raises(HistoryFormatError, match="schema"):
            read_history(history)
        history.write_text('{"record":"bench"}\n', encoding="utf-8")
        with pytest.raises(HistoryFormatError, match="header"):
            read_history(history)
        with pytest.raises(HistoryFormatError):
            read_history(tmp_path / "missing.jsonl")


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
class TestCompare:
    def test_detects_induced_regression_both_directions(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _record(tmp_path, history, "sha1",
                iterations_per_s=100.0, overhead_fraction=0.01)
        _record(tmp_path, history, "sha2",
                iterations_per_s=80.0, overhead_fraction=0.02)
        by_metric = {c.metric: c for c in compare(history, tolerance=0.05)}
        slower = by_metric["iterations_per_s"]
        assert slower.status == "regression"
        assert slower.change == pytest.approx(-0.2)
        assert slower.baseline_sha == "sha1"
        assert slower.current_sha == "sha2"
        assert by_metric["overhead_fraction"].status == "regression"
        assert "regression" in slower.message()

    def test_improvement_ok_and_untracked(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _record(tmp_path, history, "sha1",
                iterations_per_s=100.0, num_devices=4)
        _record(tmp_path, history, "sha2",
                iterations_per_s=120.0, num_devices=4)
        by_metric = {c.metric: c for c in compare(history)}
        assert by_metric["iterations_per_s"].status == "improved"
        assert by_metric["num_devices"].status == "untracked"

    def test_within_tolerance_is_ok(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _record(tmp_path, history, "sha1", iterations_per_s=100.0)
        _record(tmp_path, history, "sha2", iterations_per_s=97.0)
        (comparison,) = compare(history, tolerance=0.05)
        assert comparison.status == "ok"
        # Tighter tolerance flips the verdict.
        (comparison,) = compare(history, tolerance=0.01)
        assert comparison.status == "regression"

    def test_single_run_yields_no_comparisons(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _record(tmp_path, history, "sha1", iterations_per_s=100.0)
        assert compare(history) == []

    def test_metrics_filter(self, tmp_path):
        history = tmp_path / "h.jsonl"
        _record(tmp_path, history, "sha1",
                iterations_per_s=100.0, overhead_fraction=0.01)
        _record(tmp_path, history, "sha2",
                iterations_per_s=80.0, overhead_fraction=0.02)
        only = compare(history, metrics=["overhead_fraction"])
        assert [c.metric for c in only] == ["overhead_fraction"]
        qualified = compare(history, metrics=["demo.iterations_per_s"])
        assert [c.metric for c in qualified] == ["iterations_per_s"]


# ----------------------------------------------------------------------
# Provenance + CLI wiring
# ----------------------------------------------------------------------
class TestProvenance:
    def test_run_provenance_carries_identity_fields(self):
        stamp = run_provenance()
        assert set(stamp) >= {"git_sha", "timestamp", "unix_time", "host",
                              "platform", "python"}
        assert stamp["timestamp"].endswith("+00:00") or \
            stamp["timestamp"].endswith("Z")

    def test_github_sha_env_wins(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "env-sha")
        assert run_provenance()["git_sha"] == "env-sha"


class TestBenchCli:
    def test_record_then_gating_compare(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        artifact = _artifact(tmp_path / "BENCH_cli.json",
                             iterations_per_s=100.0)
        assert main(["bench", "record", str(artifact),
                     "--history", str(history)]) == 0
        _artifact(artifact, iterations_per_s=50.0)
        assert main(["bench", "record", str(artifact),
                     "--history", str(history)]) == 0
        capsys.readouterr()
        rc = main(["bench", "compare", "--history", str(history)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "[regression]" in captured.out
        assert "1 regression" in captured.err
        # --informational reports without gating.
        assert main(["bench", "compare", "--history", str(history),
                     "--informational"]) == 0

    def test_compare_json_output(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        artifact = _artifact(tmp_path / "BENCH_cli.json", ns_per_call=10.0)
        main(["bench", "record", str(artifact), "--history", str(history)])
        _artifact(artifact, ns_per_call=30.0)
        main(["bench", "record", str(artifact), "--history", str(history)])
        capsys.readouterr()
        rc = main(["bench", "compare", "--history", str(history), "--json",
                   "--informational"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["regressions"] == ["cli.ns_per_call"]
        assert doc["comparisons"][0]["metric"] == "ns_per_call"

    def test_record_without_artifacts_is_usage_error(self, tmp_path,
                                                     monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "record"]) == 2
        assert main(["bench", "compare",
                     "--history", str(tmp_path / "none.jsonl")]) == 2
        assert main(["bench", "compare", "--informational",
                     "--history", str(tmp_path / "none.jsonl")]) == 0
