"""Tests for the Table 2 workload zoo."""

import numpy as np
import pytest

from repro import nn
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import WORKLOAD_BUILDERS, build_workload, workload_names

ALL = sorted(WORKLOAD_BUILDERS)


class TestRegistry:
    def test_all_table2_rows_present(self):
        names = set(workload_names())
        # Table 2's ten workloads plus googlenet (from the Sec. 3.2.3
        # validation model set).
        assert names == {
            "resnet", "resnet_nobn", "resnet_sgd", "resnet_largedecay",
            "densenet", "efficientnet", "nfnet", "yolo", "multigrid",
            "transformer", "googlenet",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_workload("alexnet")

    def test_describe(self):
        desc = build_workload("resnet", size="tiny").describe()
        assert desc["name"] == "resnet"
        assert desc["bn_momentum"] == 0.9


@pytest.mark.parametrize("name", ALL)
class TestEveryWorkload:
    def test_builds_and_runs_one_iteration(self, name):
        spec = build_workload(name, size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0, test_every=0)
        loss, acc = trainer.run_iteration(0)
        assert np.isfinite(loss)
        assert 0.0 <= acc <= 1.0

    def test_model_construction_deterministic(self, name):
        spec = build_workload(name, size="tiny", seed=0)
        m1, m2 = spec.build_model(7), spec.build_model(7)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_has_batchnorm_flag_is_accurate(self, name):
        spec = build_workload(name, size="tiny", seed=0)
        model = spec.build_model(0)
        has_bn = any(isinstance(m, nn.BatchNorm) for m in model.modules())
        assert has_bn == spec.has_batchnorm

    def test_evaluate_runs(self, name):
        spec = build_workload(name, size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0, test_every=0)
        trainer.train(2)
        acc = trainer.evaluate()
        assert 0.0 <= acc <= 1.0


class TestConfigurationDifferences:
    def test_resnet_variants(self):
        base = build_workload("resnet", size="tiny")
        nobn = build_workload("resnet_nobn", size="tiny")
        sgd = build_workload("resnet_sgd", size="tiny")
        decay = build_workload("resnet_largedecay", size="tiny")
        assert base.has_batchnorm and not nobn.has_batchnorm
        assert decay.bn_momentum == 0.99 and base.bn_momentum == 0.9

        from repro.optim import SGD, Adam

        p = list(base.build_model(0).parameters())
        assert isinstance(base.build_optimizer(p), Adam)
        assert isinstance(sgd.build_optimizer(p), SGD)
        assert not sgd.build_optimizer(p).normalizes_gradients()

    def test_largedecay_bn_momentum_propagates(self):
        from repro.nn.normalization import batchnorm_layers

        spec = build_workload("resnet_largedecay", size="tiny")
        model = spec.build_model(0)
        assert all(bn.momentum == 0.99 for bn in batchnorm_layers(model))

    def test_nfnet_and_transformer_have_no_moving_stats(self):
        for name in ("nfnet", "transformer", "multigrid"):
            spec = build_workload(name, size="tiny")
            model = spec.build_model(0)
            assert all(m.extra_state() == {} for m in model.modules()), name

    def test_sizes_differ(self):
        tiny = build_workload("resnet", size="tiny")
        small = build_workload("resnet", size="small")
        assert len(small.train_data) > len(tiny.train_data)
        assert small.iterations > tiny.iterations


class TestConvergence:
    """Longer-running sanity checks that each workload family learns."""

    @pytest.mark.parametrize("name", ["resnet", "multigrid", "transformer"])
    def test_tiny_workloads_learn(self, name):
        spec = build_workload(name, size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0, test_every=0)
        rec = trainer.train()
        assert rec.final_train_accuracy() > rec.train_acc[0] + 0.15
