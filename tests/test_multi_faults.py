"""Tests for multiple-fault experiments (Sec. 4.3.2)."""

import numpy as np
import pytest

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults import (
    HardwareFault,
    MultiFaultInjector,
    OpSite,
    expected_faults_per_run,
    sample_fault,
    sample_spread_faults,
)
from repro.core.mitigation import (
    HardwareFailureDetector,
    MitigationHook,
    RecoveryManager,
)


def _fault(iteration, device=0, seed=3, site="1.conv1", kind="weight_grad"):
    ff = FFDescriptor("global_control", group=1, has_feedback=True)
    return HardwareFault(ff=ff, site=OpSite(site, kind), iteration=iteration,
                         device=device, seed=seed)


class TestMultiFaultInjector:
    def test_all_faults_fire(self, make_trainer):
        trainer = make_trainer(num_devices=2, stop_on_nonfinite=False)
        multi = MultiFaultInjector([_fault(2), _fault(6, seed=4)])
        trainer.add_hook(multi)
        trainer.train(10)
        assert multi.fired_count == 2
        assert len(multi.records) == 2

    def test_same_iteration_faults(self, make_trainer):
        trainer = make_trainer(num_devices=2, stop_on_nonfinite=False)
        multi = MultiFaultInjector([
            _fault(3, device=0, seed=1),
            _fault(3, device=1, seed=2, site="2.conv1"),
        ])
        trainer.add_hook(multi)
        trainer.train(6)
        assert multi.fired_count == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MultiFaultInjector([])

    def test_mitigation_recovers_each_fault_independently(self, make_trainer):
        """The paper's claim: spread-out failures have independent effects,
        so per-fault detection + 2-iteration re-execution handles each."""
        trainer = make_trainer(num_devices=2, stop_on_nonfinite=False)
        detector = HardwareFailureDetector()
        mitigation = MitigationHook(detector, RecoveryManager(max_recoveries=8))
        multi = MultiFaultInjector([_fault(6, seed=3), _fault(20, seed=3)])
        trainer.add_hook(multi)
        trainer.add_hook(mitigation)
        trainer.train(40)
        assert len(trainer.record.detections) >= 2
        assert len(trainer.record.recoveries) >= 2
        assert trainer.optimizer.history_magnitude() < 1e3
        assert trainer.record.nonfinite_at is None


class TestFailureRateModel:
    def test_midsize_run_sees_less_than_one_fault(self):
        """Sec. 4.3.2: mid-sized DNN training sees at most ~one failure."""
        expected = expected_faults_per_run(
            iterations=100_000, seconds_per_iteration=0.1, num_devices=8,
            failures_per_device_hour=1e-4,
        )
        assert expected < 1.0

    def test_scales_linearly(self):
        one = expected_faults_per_run(1000, 1.0, 8)
        two = expected_faults_per_run(2000, 1.0, 8)
        assert two == pytest.approx(2 * one)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_faults_per_run(0, 1.0, 8)


class TestSpreadSampling:
    def test_faults_are_spread(self, tiny_resnet_spec, rng):
        model = tiny_resnet_spec.build_model(0)

        def sampler(r):
            return sample_fault(model, r, max_iteration=10, num_devices=2)

        faults = sample_spread_faults(sampler, rng, count=4, total_iterations=400)
        iterations = [f.iteration for f in faults]
        assert iterations == sorted(iterations)
        gaps = np.diff(iterations)
        assert np.all(gaps >= 400 // 8)
        assert max(iterations) < 400

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            sample_spread_faults(lambda r: None, rng, count=0, total_iterations=10)
