"""End-to-end integration tests reproducing the paper's key mechanisms.

Each test forces one of the paper's fault-propagation paths (Fig. 4) and
verifies the predicted observable: which state class carries the fault,
which outcome appears, and whether the mitigation catches it.
"""

import numpy as np

from repro.accelerator.ffs import FFDescriptor
from repro.core.analysis.propagation import PropagationTracer
from repro.core.faults import FaultInjector, HardwareFault, OpSite
from repro.core.mitigation import (
    HardwareFailureDetector,
    MitigationHook,
    RecoveryManager,
)
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload


def run_with_fault(workload, site, kind, iteration, seed, num_devices=2,
                   extra_iters=25, ff=None, eval_device=None, test_every=5):
    spec = build_workload(workload, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(
        spec, num_devices=num_devices, seed=0, test_every=test_every,
        eval_device=eval_device or 0,
    )
    trainer.train(iteration)
    ff = ff or FFDescriptor("global_control", group=1, has_feedback=True)
    fault = HardwareFault(ff=ff, site=OpSite(site, kind), iteration=iteration,
                          device=eval_device or 0, seed=seed)
    injector = FaultInjector(fault)
    tracer = PropagationTracer()
    trainer.add_hook(injector)
    trainer.add_hook(tracer)
    trainer.train(extra_iters)
    return trainer, injector, tracer


class TestPropagationPaths:
    def test_backward_fault_corrupts_gradient_history(self):
        """Fig. 4 upper path: a backward-pass fault inflates the
        optimizer's gradient-history values within two iterations."""
        trainer, injector, tracer = run_with_fault(
            "resnet", "1.conv1", "weight_grad", iteration=8, seed=3
        )
        assert injector.fired
        onsets = [o for o in tracer.condition_onsets(8)
                  if o.condition == "gradient_history"]
        assert onsets
        assert onsets[0].latency_from_fault <= 2

    def test_forward_fault_corrupts_mvar(self):
        """Fig. 4 lower path: a huge forward-pass activation inflates the
        downstream BatchNorm's moving variance at iteration t."""
        found = False
        for seed in range(8):
            trainer, injector, tracer = run_with_fault(
                "resnet", "1.conv1", "forward", iteration=8, seed=seed,
                extra_iters=6,
            )
            if injector.record and injector.record.max_abs_faulty() > 1e20:
                window = tracer.condition_magnitude_in_window(8)
                assert window["max_mvar"] > 1e10
                found = True
                break
        assert found, "no seed produced a huge forward fault"

    def test_softmax_bounds_last_layer_faults(self):
        """A huge faulty logit is squashed by softmax: the loss gradient
        stays within [-1/m, 1/m] (Algorithm 1's anchor), so last-layer
        forward faults cannot inflate gradient history."""
        trainer, injector, tracer = run_with_fault(
            "resnet", "4", "forward", iteration=8, seed=3, extra_iters=4
        )
        assert injector.fired
        window = tracer.condition_magnitude_in_window(8)
        assert window["max_history"] < 10.0


class TestOutcomeMechanisms:
    def test_corrupted_mvar_causes_low_test_accuracy(self):
        """Force the LowTestAccuracy mechanism end to end: huge mvar on
        one device -> training accuracy normal, that device's test
        accuracy destroyed, recovery slow under a large decay factor."""
        spec = build_workload("resnet_largedecay", size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0,
                                          test_every=5, eval_device=1)
        trainer.train(10)
        from repro.nn.normalization import batchnorm_layers

        for bn in batchnorm_layers(trainer.replicas[1]):
            bn.moving_var[:] = 1e25
        trainer.train(15)
        rec = trainer.record
        # Training accuracy keeps improving; test accuracy collapsed.
        assert rec.final_train_accuracy() > 0.5
        assert rec.test_acc[-1] < 0.3
        # With decay 0.99, 1e25 needs ~log(1e-25)/log(0.99) ~ 5700
        # iterations to normalize: recovery is far beyond the budget.
        from repro.core.analysis.phases import expected_stagnation_iterations

        assert expected_stagnation_iterations(1e25, 0.99) > 1000

    def test_sgd_weight_update_fault_creates_large_weights(self):
        """Sec. 4.2.2: with SGD (no gradient normalization), a fault in
        the weight-update operation creates large absolute weights."""
        from repro.core.faults import UpdateFaultInjector

        spec = build_workload("resnet_sgd", size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0, test_every=0,
                                          stop_on_nonfinite=False)
        trainer.train(8)
        before = max(np.abs(p.data).max() for p in trainer.master.parameters())
        ff = FFDescriptor("global_control", group=1, has_feedback=True)
        fault = HardwareFault(ff=ff, site=OpSite("optimizer", "weight_update"),
                              iteration=8, device=0, seed=12)
        injector = UpdateFaultInjector(fault)
        trainer.add_hook(injector)
        trainer.train(2)
        if injector.record and injector.record.max_abs_faulty() > 1e6:
            # NaN weights are also "large faulty weights" here: map all
            # non-finite values to the float32 extreme before comparing.
            after = max(
                np.abs(np.nan_to_num(p.data, nan=3e38, posinf=3e38, neginf=-3e38)).max()
                for p in trainer.master.parameters()
            )
            assert after > before * 1e3

    def test_adam_normalization_blocks_weight_blowup(self):
        """The counterpart: under Adam, even a huge faulty *gradient*
        cannot create large weights (updates are normalized) — which is
        why SharpDegrade needs a non-normalizing optimizer."""
        trainer, injector, tracer = run_with_fault(
            "resnet", "1.conv1", "weight_grad", iteration=8, seed=3, extra_iters=3
        )
        assert injector.record.max_abs_faulty() > 1e20
        max_w = max(
            np.abs(np.nan_to_num(p.data)).max() for p in trainer.master.parameters()
        )
        assert max_w < 100.0


class TestMitigationAgainstRealFaults:
    def test_detector_catches_injected_backward_fault(self):
        spec = build_workload("resnet", size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0, test_every=0)
        detector = HardwareFailureDetector()
        mitigation = MitigationHook(detector, RecoveryManager(strategy="snapshot"))
        ff = FFDescriptor("global_control", group=1, has_feedback=True)
        fault = HardwareFault(ff=ff, site=OpSite("1.conv1", "weight_grad"),
                              iteration=8, device=1, seed=3)
        trainer.add_hook(FaultInjector(fault))
        trainer.add_hook(mitigation)
        rec = trainer.train(40)
        assert detector.fired
        assert detector.detection_latency(8) <= 2
        assert rec.recoveries
        # Training completed with clean history state.
        assert trainer.optimizer.history_magnitude() < 1e3
        assert rec.final_train_accuracy() > 0.5

    def test_detection_latency_bounded_over_many_seeds(self):
        """For every seed whose fault actually corrupts a necessary
        condition, detection happens within two iterations — the paper's
        bounded-latency guarantee."""
        ff = FFDescriptor("global_control", group=1, has_feedback=True)
        latencies = []
        for seed in range(6):
            spec = build_workload("resnet", size="tiny", seed=0)
            trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0,
                                              test_every=0, stop_on_nonfinite=False)
            detector = HardwareFailureDetector()
            fault = HardwareFault(ff=ff, site=OpSite("1.conv2", "weight_grad"),
                                  iteration=6, device=0, seed=seed)
            trainer.add_hook(FaultInjector(fault))
            trainer.add_hook(detector)
            trainer.train(12)
            if detector.fired:
                latencies.append(detector.detection_latency(6))
        assert latencies, "no fault was detected in any seed"
        assert all(lat <= 2 for lat in latencies)


class TestLossObservability:
    """Observation 2's tail: forward-pass faults announce themselves with
    a loss spike at the fault iteration; backward-pass faults that corrupt
    history leave the loss looking normal — which is why loss monitoring
    alone cannot replace the bound checks."""

    @staticmethod
    def _loss_spike_ratio(workload, kind, seed, magnitude=1e8):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
        from bench_fig2_latent_outcomes import ControlledFault

        spec = build_workload(workload, size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0,
                                          test_every=0, stop_on_nonfinite=False)
        trainer.add_hook(ControlledFault("1.conv1", kind, 8, device=0,
                                         magnitude=magnitude, elements=64,
                                         seed=seed))
        trainer.train(12)
        losses = trainer.record.loss_array()
        baseline = float(np.median(losses[4:8]))
        at_fault = float(losses[8])
        return at_fault / max(baseline, 1e-9)

    def test_forward_fault_spikes_loss(self):
        # Cross-entropy bounds the spike (saturated softmax ~ -log p_min),
        # but it is still several times the baseline.
        ratio = self._loss_spike_ratio("resnet_nobn", "forward", seed=2)
        assert ratio > 3.0

    def test_backward_fault_leaves_loss_normal(self):
        ratio = self._loss_spike_ratio("resnet_nobn", "weight_grad", seed=2)
        assert ratio < 2.0
