"""Tests for campaign report rendering and accelerator config presets."""

import numpy as np
import pytest

from repro.accelerator.config import (
    CONFIG_PRESETS,
    CPU_SIMD_CONFIG,
    DEFAULT_CONFIG,
    GPU_LIKE_CONFIG,
    AcceleratorConfig,
)
from repro.accelerator.dataflow import DataflowMap
from repro.core.analysis.report import render_campaign, render_convergence
from repro.training.metrics import ConvergenceRecord


class TestConfigPresets:
    def test_presets_registered(self):
        assert set(CONFIG_PRESETS) == {"nvdla", "gpu_like", "cpu_simd"}
        assert CONFIG_PRESETS["nvdla"] is DEFAULT_CONFIG

    def test_geometry_differs(self):
        shape = (1, 64, 4, 4)
        nvdla = DataflowMap(shape, DEFAULT_CONFIG)
        gpu = DataflowMap(shape, GPU_LIKE_CONFIG)
        cpu = DataflowMap(shape, CPU_SIMD_CONFIG)
        assert nvdla.channel_groups == 4   # 64 / 16 lanes
        assert gpu.channel_groups == 2     # 64 / 32 lanes
        assert cpu.channel_groups == 8     # 64 / 8 lanes

    def test_fault_models_retarget(self, rng):
        """The same fault model produces geometry matching the preset."""
        from repro.accelerator.ffs import FFDescriptor
        from repro.core.faults.software_models import Group1RandomOutputs

        tensor = rng.normal(size=(1, 64, 4, 4)).astype(np.float32)
        ff = FFDescriptor("global_control", group=1, has_feedback=False)
        _, rec_gpu = Group1RandomOutputs(GPU_LIKE_CONFIG).apply(
            tensor, np.random.default_rng(0), ff)
        _, rec_cpu = Group1RandomOutputs(CPU_SIMD_CONFIG).apply(
            tensor, np.random.default_rng(0), ff)
        assert rec_gpu.num_faulty == 32  # one GPU-like cycle
        assert rec_cpu.num_faulty == 8   # one CPU-SIMD cycle

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(mac_lanes=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(max_feedback_loop=0)


class TestConvergenceReport:
    def _record(self):
        rec = ConvergenceRecord()
        for i in range(6):
            rec.record_train(i, 1.0 - 0.1 * i, 0.1 * i)
        rec.record_test(5, 0.42)
        rec.detections.append(3)
        rec.recoveries.append(2)
        rec.mark_nonfinite(4)
        return rec

    def test_render_contains_all_events(self):
        text = render_convergence(self._record(), title="demo")
        assert "# demo" in text
        assert "iter     0" in text
        assert "test_acc 0.4200" in text
        assert "INFs/NaNs observed at iteration 4" in text
        assert "detected at iteration 3" in text
        assert "re-executed from iteration 2" in text

    def test_every_parameter_thins_output(self):
        full = render_convergence(self._record(), every=1)
        thin = render_convergence(self._record(), every=3)
        assert len(thin.splitlines()) < len(full.splitlines())


class TestCampaignReport:
    def test_render_campaign(self, make_trainer):
        from repro.core.faults import Campaign
        from repro.workloads import build_workload

        spec = build_workload("resnet", size="tiny", seed=0)
        campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=6,
                            horizon=12, inject_window=4, test_every=6)
        result = campaign.run(num_experiments=3, seed=1)
        text = render_campaign(result)
        assert "# campaign: resnet (3 experiments)" in text
        assert "outcome breakdown" in text
        assert "unexpected rate" in text
        assert "FF class" in text
