"""Tests for the fused training-state layer (repro.state)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, RMSProp
from repro.state import ArenaLayoutError, StateArena, build_arenas
from repro.training.checkpoints import Checkpoint


def build_model(seed: int = 0) -> nn.Sequential:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Dense(6, 10, rng),
        nn.BatchNorm(10),
        nn.ReLU(),
        nn.Dense(10, 4, rng),
    )


class TestLayout:
    def test_index_covers_all_parameters(self):
        model = build_model()
        arena = StateArena(model)
        assert set(arena.names()) == {n for n, _ in model.named_parameters()}
        assert arena.total == model.num_parameters()

    def test_offsets_are_contiguous(self):
        arena = StateArena(build_model())
        offset = 0
        for name in arena.names():
            entry = arena.entry(name)
            assert entry.offset == offset
            assert entry.size == int(np.prod(entry.shape)) if entry.shape else 1
            offset += entry.size
        assert offset == arena.total

    def test_rebinding_preserves_values(self):
        model = build_model()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        arena = StateArena(model)
        for name, param in model.named_parameters():
            assert np.array_equal(param.data, before[name])
            assert param.data.base is arena.param or param.data is arena.param

    def test_views_alias_the_buffer(self):
        model = build_model()
        arena = StateArena(model)
        arena.param.fill(7.0)
        for param in model.parameters():
            assert np.all(param.data == 7.0)

    def test_grad_accumulation_lands_in_buffer(self, rng):
        model = build_model()
        arena = StateArena(model)
        x = rng.normal(size=(8, 6)).astype(np.float32)
        loss = nn.SoftmaxCrossEntropy()
        loss.forward(model.forward(x), np.zeros(8, dtype=np.int64))
        arena.grad.fill(0.0)
        model.backward(loss.backward())
        total = sum(float(np.sum(np.abs(p.grad))) for p in model.parameters())
        assert float(np.sum(np.abs(arena.grad))) == pytest.approx(total)
        assert float(np.sum(np.abs(arena.grad))) > 0

    def test_unknown_name_raises(self):
        arena = StateArena(build_model())
        with pytest.raises(KeyError):
            arena.entry("nope.weight")
        with pytest.raises(KeyError):
            arena.index_of("nope.weight")

    def test_owner_module(self):
        assert StateArena.owner_module("0.conv1.weight") == "0.conv1"

    def test_resolve(self):
        arena = StateArena(build_model())
        assert arena.resolve("0.weight") == ("0", "weight")

    def test_tied_parameters_rejected(self):
        class Tied(nn.Module):
            def __init__(self):
                super().__init__()
                param = Parameter(np.zeros((2, 2), dtype=np.float32))
                self._params["a"] = param
                self._params["b"] = param

        with pytest.raises(ArenaLayoutError):
            StateArena(Tied())
        assert build_arenas([Tied()]) is None

    def test_empty_model_rejected(self):
        with pytest.raises(ArenaLayoutError):
            StateArena(nn.ReLU())


def _clone_params(model):
    return [Parameter(p.data.copy(), name=p.name) for p in model.parameters()]


def _random_grads(params, rng, scale=1.0):
    return [
        (rng.normal(size=p.data.shape) * scale).astype(np.float32) for p in params
    ]


@pytest.mark.parametrize(
    "make_optimizer",
    [
        lambda ps: SGD(ps, lr=0.05),
        lambda ps: SGD(ps, lr=0.05, momentum=0.9),
        lambda ps: Adam(ps, lr=3e-3),
        lambda ps: AdamW(ps, lr=3e-3, weight_decay=0.02),
        lambda ps: RMSProp(ps, lr=1e-3),
    ],
    ids=["sgd", "sgd-momentum", "adam", "adamw", "rmsprop"],
)
class TestFusedStepBitIdentical:
    """The fused optimizer path must be bit-identical to the scattered
    path — including under overflowed (faulty) gradient magnitudes."""

    def run_both(self, make_optimizer, grad_scale):
        rng = np.random.default_rng(3)
        model = build_model(0)
        scattered_params = _clone_params(model)
        scattered = make_optimizer(scattered_params)
        arena = StateArena(model)
        fused = make_optimizer(list(model.parameters()))
        fused.bind_arena(arena)
        for step in range(5):
            grads = _random_grads(scattered_params, rng, scale=grad_scale)
            for p_s, p_f, g in zip(scattered_params, model.parameters(), grads):
                p_s.grad[...] = g
                p_f.grad[...] = g
            scattered.step()
            fused.step()
            for p_s, p_f in zip(scattered_params, model.parameters()):
                assert np.array_equal(p_s.data, p_f.data, equal_nan=True), (
                    f"divergence at step {step}"
                )
        for name, slots in scattered._slot_arrays().items():
            for s_arr, f_arr in zip(slots, fused._slot_arrays()[name]):
                assert np.array_equal(s_arr, f_arr, equal_nan=True)
        assert scattered.history_magnitude() == fused.history_magnitude()

    def test_normal_gradients(self, make_optimizer):
        self.run_both(make_optimizer, grad_scale=1.0)

    def test_faulty_gradients_overflow(self, make_optimizer):
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            self.run_both(make_optimizer, grad_scale=1e30)


class TestFusedOptimizerPlumbing:
    def test_slot_lists_are_views(self):
        model = build_model()
        arena = StateArena(model)
        opt = Adam(list(model.parameters()), lr=1e-3)
        opt.bind_arena(arena)
        opt.fused_slot("m").fill(3.0)
        assert all(np.all(m == 3.0) for m in opt.m)

    def test_bind_preserves_existing_slot_values(self):
        model = build_model()
        opt = Adam(list(model.parameters()), lr=1e-3)
        opt.m[0][...] = 5.0
        arena = StateArena(model)
        opt.bind_arena(arena)
        assert np.all(opt.m[0] == 5.0)
        assert np.all(opt.fused_slot("m")[: opt.m[0].size] == 5.0)

    def test_bind_requires_matching_params(self):
        model = build_model()
        arena = StateArena(model)
        other = build_model(1)
        opt = Adam(list(other.parameters()), lr=1e-3)
        with pytest.raises(ValueError):
            opt.bind_arena(arena)

    def test_update_hook_still_fires_per_parameter(self):
        model = build_model()
        arena = StateArena(model)
        opt = SGD(list(model.parameters()), lr=0.1)
        opt.bind_arena(arena)
        seen = []
        opt.set_update_hook(lambda u, info: seen.append(info["index"]) or u)
        for p in model.parameters():
            p.grad[...] = 1.0
        opt.step()
        assert seen == list(range(len(opt.params)))

    def test_state_dict_round_trip_fused(self):
        model = build_model()
        arena = StateArena(model)
        opt = Adam(list(model.parameters()), lr=1e-3)
        opt.bind_arena(arena)
        for p in model.parameters():
            p.grad[...] = 0.5
        opt.step()
        snapshot = opt.state_dict()
        opt.step()
        opt.load_state_dict(snapshot)
        assert np.array_equal(opt.fused_slot("m"), np.concatenate(
            [np.ravel(a) for a in snapshot["m"]]
        ))
        assert opt.iteration == 1


class TestTrainerArena:
    def test_trainer_builds_arenas(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        assert trainer.arenas is not None
        assert len(trainer.arenas) == 2
        assert trainer.optimizer.arena is trainer.master_arena

    def test_broadcast_is_fused_copy(self, make_trainer):
        trainer = make_trainer(num_devices=3)
        trainer.train(2)
        for arena in trainer.arenas[1:]:
            assert np.array_equal(arena.param, trainer.master_arena.param)

    def test_fused_checkpoint_round_trip(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        trainer.train(3)
        ckpt = Checkpoint.capture(trainer)
        assert ckpt._fused is not None
        before = trainer.master_arena.param.copy()
        trainer.train(3)
        ckpt.restore(trainer)
        assert trainer.iteration == 3
        assert np.array_equal(trainer.master_arena.param, before)

    def test_fused_and_scattered_checkpoints_agree(self, make_trainer):
        trainer = make_trainer(num_devices=2)
        trainer.train(3)
        fused = Checkpoint.capture(trainer)
        scattered = Checkpoint.capture_scattered(trainer)
        for d in range(2):
            f_state, s_state = fused.replica_states[d], scattered.replica_states[d]
            assert set(f_state) == set(s_state)
            for key in f_state:
                assert np.array_equal(f_state[key], s_state[key]), key
        f_opt, s_opt = fused.optimizer_state, scattered.optimizer_state
        assert set(f_opt) == set(s_opt)
        for key in f_opt:
            if key in ("iteration", "lr"):
                assert f_opt[key] == s_opt[key]
            else:
                for f_arr, s_arr in zip(f_opt[key], s_opt[key]):
                    assert np.array_equal(f_arr, s_arr)
        assert fused.nbytes() == scattered.nbytes()

    def test_fused_checkpoint_restores_into_fresh_trainer(self, make_trainer):
        donor = make_trainer(num_devices=2)
        donor.train(4)
        ckpt = Checkpoint.capture(donor)
        fresh = make_trainer(num_devices=2, seed=9)
        ckpt.restore(fresh)
        assert fresh.iteration == 4
        assert np.array_equal(fresh.master_arena.param, donor.master_arena.param)
        assert fresh.optimizer.iteration == donor.optimizer.iteration

    def test_scattered_checkpoint_restores_into_arena_trainer(self, make_trainer):
        donor = make_trainer(num_devices=2)
        donor.train(4)
        ckpt = Checkpoint.capture_scattered(donor)
        fresh = make_trainer(num_devices=2, seed=9)
        ckpt.restore(fresh)
        assert np.array_equal(fresh.master_arena.param, donor.master_arena.param)
        # The restore must have gone through the views, not rebound them.
        first = next(iter(fresh.master.parameters()))
        assert first.data.base is fresh.master_arena.param


class TestArenaNameInjection:
    def test_injector_resolves_arena_name(self, make_trainer):
        from repro.accelerator.ffs import FFInventory
        from repro.core.faults.hardware import HardwareFault, OpSite
        from repro.core.faults.injector import FaultInjector

        trainer = make_trainer(num_devices=2)
        param_name = trainer.master_arena.names()[0]
        ff = FFInventory().sample(np.random.default_rng(0))
        fault = HardwareFault(
            ff=ff, site=OpSite(param_name, "weight_grad"),
            iteration=1, device=1, seed=3,
        )
        injector = FaultInjector(fault)
        trainer.add_hook(injector)
        trainer.train(3)
        assert injector.fired
        assert injector.record is not None

    def test_update_injector_targets_named_parameter(self, make_trainer):
        from repro.accelerator.ffs import FFInventory
        from repro.core.faults.hardware import HardwareFault, OpSite
        from repro.core.faults.injector import UpdateFaultInjector

        trainer = make_trainer(num_devices=2)
        param_name = trainer.master_arena.names()[2]
        expected_index = trainer.master_arena.index_of(param_name)
        ff = FFInventory().sample(np.random.default_rng(0))
        fault = HardwareFault(
            ff=ff, site=OpSite(param_name, "forward"),
            iteration=1, device=0, seed=3,
        )
        injector = UpdateFaultInjector(fault)
        trainer.add_hook(injector)
        trainer.train(3)
        assert injector.fired
        assert injector._target_index == expected_index

    def test_unknown_site_still_raises(self, make_trainer):
        from repro.accelerator.ffs import FFInventory
        from repro.core.faults.hardware import HardwareFault, OpSite
        from repro.core.faults.injector import FaultInjector

        trainer = make_trainer(num_devices=2)
        ff = FFInventory().sample(np.random.default_rng(0))
        fault = HardwareFault(
            ff=ff, site=OpSite("no.such.site", "forward"),
            iteration=0, device=0, seed=3,
        )
        trainer.add_hook(FaultInjector(fault))
        with pytest.raises(KeyError):
            trainer.train(1)
