"""Tests for composite blocks (residual, dense, SE, MBConv, NF)."""

import numpy as np
import pytest

from repro import nn
from tests.conftest import directional_gradcheck


class TestResidualBlock:
    def test_identity_shortcut_shape(self, rng):
        block = nn.ResidualBlock(4, 4, rng)
        assert not block.has_projection
        out = block.forward(rng.normal(size=(2, 4, 6, 6)).astype(np.float32))
        assert out.shape == (2, 4, 6, 6)

    def test_projection_shortcut(self, rng):
        block = nn.ResidualBlock(4, 8, rng, stride=2)
        assert block.has_projection
        out = block.forward(rng.normal(size=(2, 4, 6, 6)).astype(np.float32))
        assert out.shape == (2, 8, 3, 3)

    def test_no_bn_variant_has_no_batchnorm(self, rng):
        block = nn.ResidualBlock(4, 4, rng, use_bn=False)
        assert not any(isinstance(m, nn.BatchNorm) for m in block.modules())

    def test_gradcheck_with_bn(self, rng):
        model = nn.Sequential(nn.ResidualBlock(3, 6, rng, stride=2),
                              nn.GlobalAvgPool2D(), nn.Dense(6, 3, rng))
        x = rng.normal(size=(6, 3, 6, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=6)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng,
                                     eps=2e-3) < 0.05

    def test_gradcheck_no_bn(self, rng):
        model = nn.Sequential(nn.ResidualBlock(3, 6, rng, stride=2, use_bn=False),
                              nn.GlobalAvgPool2D(), nn.Dense(6, 3, rng))
        x = rng.normal(size=(6, 3, 6, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=6)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng,
                                     eps=2e-3) < 0.05

    def test_bn_momentum_propagates(self, rng):
        block = nn.ResidualBlock(4, 4, rng, bn_momentum=0.99)
        assert block.bn1.momentum == 0.99


class TestDenseBlock:
    def test_channel_growth(self, rng):
        block = nn.DenseBlock(4, growth_rate=3, num_layers=2, rng=rng)
        out = block.forward(rng.normal(size=(2, 4, 5, 5)).astype(np.float32))
        assert out.shape == (2, 10, 5, 5)
        assert block.out_channels == 10

    def test_input_preserved_in_output(self, rng):
        block = nn.DenseBlock(2, growth_rate=2, num_layers=1, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        out = block.forward(x)
        assert np.array_equal(out[:, :2], x)

    def test_gradcheck(self, rng):
        model = nn.Sequential(nn.DenseBlock(3, 2, 2, rng), nn.GlobalAvgPool2D(),
                              nn.Dense(7, 3, rng))
        x = rng.normal(size=(6, 3, 5, 5)).astype(np.float32)
        y = rng.integers(0, 3, size=6)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng,
                                     eps=2e-3) < 0.05


class TestTransitionLayer:
    def test_halves_spatial(self, rng):
        layer = nn.TransitionLayer(6, 3, rng)
        out = layer.forward(rng.normal(size=(2, 6, 8, 8)).astype(np.float32))
        assert out.shape == (2, 3, 4, 4)


class TestSqueezeExcite:
    def test_output_shape(self, rng):
        se = nn.SqueezeExcite(8, rng)
        x = rng.normal(size=(2, 8, 4, 4)).astype(np.float32)
        assert se.forward(x).shape == x.shape

    def test_gate_bounded(self, rng):
        se = nn.SqueezeExcite(8, rng)
        x = rng.normal(size=(2, 8, 4, 4)).astype(np.float32) * 100
        out = se.forward(x)
        # Gate in (0, 1): |out| <= |x| per element.
        assert np.all(np.abs(out) <= np.abs(x) + 1e-5)

    def test_gradcheck(self, rng):
        model = nn.Sequential(nn.Conv2D(2, 4, 3, rng), nn.SqueezeExcite(4, rng),
                              nn.GlobalAvgPool2D(), nn.Dense(4, 2, rng))
        x = rng.normal(size=(4, 2, 5, 5)).astype(np.float32)
        y = rng.integers(0, 2, size=4)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng,
                                     eps=2e-3) < 0.05


class TestMBConv:
    def test_skip_only_when_shapes_match(self, rng):
        assert nn.MBConvBlock(4, 4, rng).has_skip
        assert not nn.MBConvBlock(4, 8, rng).has_skip
        assert not nn.MBConvBlock(4, 4, rng, stride=2).has_skip

    def test_forward_shape(self, rng):
        block = nn.MBConvBlock(4, 8, rng, stride=2)
        out = block.forward(rng.normal(size=(2, 4, 8, 8)).astype(np.float32))
        assert out.shape == (2, 8, 4, 4)


class TestNFBlock:
    def test_no_batchnorm(self, rng):
        block = nn.NFBlock(4, rng)
        assert not any(isinstance(m, nn.BatchNorm) for m in block.modules())
        assert all(m.extra_state() == {} for m in block.modules())

    def test_residual_dominates_at_small_alpha(self, rng):
        block = nn.NFBlock(4, rng, alpha=0.0)
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        assert np.allclose(block.forward(x), x)

    def test_gradcheck(self, rng):
        model = nn.Sequential(nn.NFBlock(3, rng), nn.GlobalAvgPool2D(),
                              nn.Dense(3, 2, rng))
        x = rng.normal(size=(4, 3, 5, 5)).astype(np.float32)
        y = rng.integers(0, 2, size=4)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng,
                                     eps=2e-3) < 0.05


class TestConvBnAct:
    def test_with_and_without_bn(self, rng):
        with_bn = nn.conv_bn_act(3, 8, rng, use_bn=True)
        without = nn.conv_bn_act(3, 8, rng, use_bn=False)
        assert any(isinstance(m, nn.BatchNorm) for m in with_bn.modules())
        assert not any(isinstance(m, nn.BatchNorm) for m in without.modules())


class TestInceptionBlock:
    def test_channel_merge(self, rng):
        block = nn.InceptionBlock(3, 4, rng)
        out = block.forward(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        assert out.shape == (2, 16, 6, 6)
        assert block.out_channels == 16

    def test_pool_adjoint(self, rng):
        """<pool(x), y> == <x, pool_adjoint(y)> for the zero-padded 3x3
        average pool used by the pool branch."""
        block = nn.InceptionBlock(3, 4, rng)
        x = rng.normal(size=(2, 3, 5, 5)).astype(np.float32)
        y = rng.normal(size=(2, 3, 5, 5)).astype(np.float32)
        lhs = float(np.sum(block._pool(x) * y))
        n, c, h, w = x.shape
        padded = np.zeros((n, c, h + 2, w + 2), dtype=np.float32)
        for dy in range(3):
            for dx in range(3):
                padded[:, :, dy:dy + h, dx:dx + w] += y / 9.0
        rhs = float(np.sum(x * padded[:, :, 1:1 + h, 1:1 + w]))
        assert lhs == pytest.approx(rhs, rel=1e-4)

    def test_input_gradient(self, rng):
        """Directional check of the block's input gradient (parameter
        gradients are covered by the exhaustive per-parameter check)."""
        block = nn.InceptionBlock(3, 4, rng)
        x = rng.normal(size=(2, 3, 5, 5)).astype(np.float32)
        weights = rng.normal(size=block.forward(x).shape).astype(np.float32)

        def value(z):
            return float(np.sum(block.forward(z) * weights))

        block.forward(x)
        g = block.backward(weights)
        d = rng.normal(size=x.shape).astype(np.float32)
        eps = 1e-3
        numeric = (value(x + eps * d) - value(x - eps * d)) / (2 * eps)
        analytic = float(np.sum(g * d))
        assert analytic == pytest.approx(numeric, rel=0.02)

    def test_parameter_gradients(self, rng):
        block = nn.InceptionBlock(2, 3, rng)
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        weights = rng.normal(size=block.forward(x).shape).astype(np.float32)
        block.forward(x)
        block.zero_grad()
        block.backward(weights)
        eps = 1e-3
        for name, p in block.named_parameters():
            flat = p.data.reshape(-1)
            gflat = p.grad.reshape(-1)
            i = int(np.abs(gflat).argmax())
            old = flat[i]
            flat[i] = old + eps
            l1 = float(np.sum(block.forward(x) * weights))
            flat[i] = old - eps
            l2 = float(np.sum(block.forward(x) * weights))
            flat[i] = old
            numeric = (l1 - l2) / (2 * eps)
            assert gflat[i] == pytest.approx(numeric, rel=0.02, abs=1e-3), name
