"""Tests for bit-level float manipulation (repro.tensor.bits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.bits import (
    bit_field,
    bits_to_float32,
    flip_bfloat16_bit,
    flip_float32_bit,
    float32_to_bits,
    is_upper_exponent_bit,
    random_float32_pattern,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestBitConversions:
    @given(finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, x):
        assert bits_to_float32(float32_to_bits(np.float32(x))) == np.float32(x)

    def test_known_encodings(self):
        assert float32_to_bits(np.float32(1.0)) == 0x3F800000
        assert float32_to_bits(np.float32(-2.0)) == 0xC0000000
        assert bits_to_float32(np.uint32(0x7F800000)) == np.inf


class TestBitFlips:
    @given(finite_floats, st.integers(min_value=0, max_value=31))
    @settings(max_examples=300, deadline=None)
    def test_flip_is_involution(self, x, bit):
        flipped = flip_float32_bit(np.float32(x), bit)
        back = flip_float32_bit(flipped, bit)
        assert float32_to_bits(back) == float32_to_bits(np.float32(x))

    def test_sign_flip(self):
        assert float(flip_float32_bit(np.float32(1.5), 31)) == -1.5

    def test_top_exponent_flip_explodes_small_values(self):
        # |x| < 2 has MSB exponent bit 0; flipping it multiplies by 2^128.
        out = float(flip_float32_bit(np.float32(1.0), 30))
        assert out > 1e38 or np.isinf(out)

    def test_mantissa_flip_small_change(self):
        out = float(flip_float32_bit(np.float32(1.0), 0))
        assert abs(out - 1.0) < 1e-6

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            flip_float32_bit(1.0, 32)
        with pytest.raises(ValueError):
            flip_bfloat16_bit(1.0, 16)

    @given(finite_floats, st.integers(min_value=0, max_value=15))
    @settings(max_examples=200, deadline=None)
    def test_bfloat16_flip_involution_on_truncated(self, x, bit):
        # Truncate-then-flip twice returns the truncated value.
        base = np.float32(x)
        flipped = flip_bfloat16_bit(base, bit)
        back = flip_bfloat16_bit(flipped, bit)
        truncated = bits_to_float32(float32_to_bits(base) & np.uint32(0xFFFF0000))
        assert float32_to_bits(back) == float32_to_bits(truncated)


class TestBitFields:
    def test_float32_fields(self):
        assert bit_field(31) == "sign"
        assert bit_field(30) == "exponent"
        assert bit_field(23) == "exponent"
        assert bit_field(22) == "mantissa"
        assert bit_field(0) == "mantissa"

    def test_bfloat16_fields(self):
        assert bit_field(15, "bfloat16") == "sign"
        assert bit_field(14, "bfloat16") == "exponent"
        assert bit_field(6, "bfloat16") == "mantissa"

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            bit_field(0, "fp8")

    def test_upper_exponent_bits(self):
        # Sec. 4.3.1's "upper two exponent bits" of float32: bits 29, 30.
        assert is_upper_exponent_bit(30)
        assert is_upper_exponent_bit(29)
        assert not is_upper_exponent_bit(28)
        assert not is_upper_exponent_bit(31)  # sign
        assert is_upper_exponent_bit(14, "bfloat16")
        assert is_upper_exponent_bit(13, "bfloat16")
        assert not is_upper_exponent_bit(12, "bfloat16")


class TestRandomPatterns:
    def test_shape_and_dtype(self, rng):
        out = random_float32_pattern(rng, 100)
        assert out.shape == (100,)
        assert out.dtype == np.float32

    def test_spans_dynamic_range(self):
        # Table 1 group 1: "random faulty values that can span the entire
        # data precision dynamic range".
        rng = np.random.default_rng(0)
        out = random_float32_pattern(rng, 10_000)
        finite = out[np.isfinite(out)]
        assert np.abs(finite).max() > 1e30
        assert np.abs(finite[finite != 0.0]).min() < 1e-30

    def test_deterministic_given_seed(self):
        a = random_float32_pattern(np.random.default_rng(7), 64)
        b = random_float32_pattern(np.random.default_rng(7), 64)
        assert np.array_equal(a, b, equal_nan=True)
